// Service throughput — two modes over the paper's canonical workload
// (2000-option volatility curves, Section I):
//
//   --mode curve (default): the micro-batched PricingService vs submitting
//   one option at a time. Both sides run through the service so the
//   comparison isolates what batching buys: coalesced NDRange launches,
//   sharding across backend workers, and the LRU quote cache on repeat
//   ticks.
//
//   --mode fleet: a heterogeneous CPU+GPU+FPGA fleet priced two ways —
//   the status-quo shared-FIFO dispatch (workers pull max_batch-sized
//   chunks round-robin-style at their own pace) vs the fleet router
//   (DESIGN.md §2.8), which places each batch on the backend with the
//   lowest feedback-corrected predicted completion time. A third pass
//   runs the energy-budget policy and reports modelled J/option. Gates:
//   the router must not lose to the shared queue on options/s, and the
//   energy policy must not lose to it on modelled J/option.
//
//   --mode greeks: a book of Greeks requests through the GreeksService
//   (DESIGN.md §2.9), which expands each request into four bump legs and
//   fans them through the batcher as one many-kernel job, vs the same
//   requests against a one-leg-per-submit service (max_batch 1, no
//   linger). Every assembled Greeks is checked bitwise against a direct
//   reference (shared lattice front + bump set, legs priced by a private
//   accelerator run). Gate (reference target): the batched GreeksService
//   must not lose to the one-leg-at-a-time baseline.
//
//   --mode bursty: the market-open spike. N submitter threads (default 8)
//   all blast the curve through price_batch_blocking at once, then trickle
//   requests through a quiet tail — the arrival pattern the lock-free hot
//   path (DESIGN.md §2.6) was built for. The run is measured twice with
//   identical traffic: once on the mutex+deque spine with the SIMD kernel
//   forced off (the pre-redesign service), once on the MPMC-ring spine
//   with runtime SIMD dispatch. Reports spike options/s and p50/p99/p999
//   request latency for both, and the speedup between them.
//
//   --mode soak: the overload soak (DESIGN.md §2.10). First measures the
//   service's uncontended capacity with a closed loop, then sweeps
//   open-loop Poisson-free (fixed-schedule) arrivals at multiples of that
//   capacity (default 0.5x, 1x, 2x, 4x — i.e. from comfortable to four
//   times saturated), issuing >=1M single-quote submissions (default)
//   with a mixed realtime/normal/batch priority stream and a per-request
//   deadline, against a service with priority admission + the adaptive
//   shed watermark armed. Every future is tallied into exactly one
//   outcome bucket, so the gates are exact, not statistical: (a) request
//   conservation — issued == completed + shed + timed-out + failed, per
//   class, cross-checked against the service's own counters; (b) the
//   kRealtime completion p99 while 4x-overloaded stays within 2x its
//   uncontended p99 (+25ms scheduling slack); (c) every completion that
//   was not browned out matches the direct run bit for bit.
//
// A direct PricingAccelerator::run of the curve supplies the bit-exact
// parity reference in both modes. Emits a machine-readable JSON row after
// the human-readable report (written to --json-out too, when given — CI
// stores it as BENCH_service_throughput.json). Exits non-zero on parity
// divergence, on batching losing to one-at-a-time (curve mode), or on the
// lock-free spine losing to the mutexed baseline (bursty mode, reference
// target).
#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <future>
#include <limits>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/accelerator.h"
#include "core/service/greeks_service.h"
#include "core/service/pricing_service.h"
#include "energy/energy_model.h"
#include "finance/binomial_batch.h"
#include "finance/greeks.h"
#include "finance/workload.h"

namespace {

using namespace binopt;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

void emit_json(const std::string& row, const std::string& json_out) {
  std::printf("%s\n", row.c_str());
  if (json_out.empty()) return;
  std::FILE* file = std::fopen(json_out.c_str(), "w");
  if (file == nullptr) {
    std::fprintf(stderr, "WARN: cannot write %s\n", json_out.c_str());
    return;
  }
  std::fprintf(file, "%s\n", row.c_str());
  std::fclose(file);
}

std::string format_row(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  char buffer[2048];
  std::vsnprintf(buffer, sizeof buffer, fmt, args);
  va_end(args);
  return buffer;
}

/// One measured spine in bursty mode.
struct BurstyOutcome {
  double spike_ops = 0.0;  ///< best-of-reps spike throughput
  core::service::ServiceStats stats;  ///< merged across reps
  std::size_t mismatches = 0;
};

/// Market-open arrival pattern: every submitter blasts the whole curve in
/// back-to-back blocking chunks (the spike), then trickles small chunks
/// with think-time gaps (the quiet tail). Spike throughput is wall-clock
/// from the starting gun to the last submitter finishing its spike.
BurstyOutcome run_bursty(const core::ServiceConfig& config,
                         const std::vector<finance::OptionSpec>& curve,
                         const std::vector<double>& reference,
                         std::size_t submitters, int reps) {
  constexpr std::size_t kSpikeChunk = 32;
  constexpr std::size_t kQuietChunk = 8;
  constexpr int kQuietChunksPerSubmitter = 8;

  BurstyOutcome outcome;
  std::atomic<std::size_t> mismatches{0};
  for (int rep = 0; rep < reps; ++rep) {
    core::PricingService service(config);
    std::atomic<std::size_t> ready{0};
    std::atomic<bool> go{false};
    std::atomic<std::size_t> spike_done{0};
    std::vector<std::thread> threads;
    threads.reserve(submitters);
    for (std::size_t sub = 0; sub < submitters; ++sub) {
      threads.emplace_back([&, sub] {
        std::vector<double> out(kSpikeChunk);
        ready.fetch_add(1);
        while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
        // Spike: the whole curve, as fast as the service admits it.
        for (std::size_t base = 0; base < curve.size(); base += kSpikeChunk) {
          const std::size_t n = std::min(kSpikeChunk, curve.size() - base);
          service.price_batch_blocking(curve.data() + base, n, out.data());
          for (std::size_t i = 0; i < n; ++i) {
            if (out[i] != reference[base + i]) mismatches.fetch_add(1);
          }
        }
        spike_done.fetch_add(1, std::memory_order_release);
        // Quiet tail: sparse mid-session flow, offset per submitter.
        for (int chunk = 0; chunk < kQuietChunksPerSubmitter; ++chunk) {
          const std::size_t base =
              ((sub + 1) * 97 + static_cast<std::size_t>(chunk) * kQuietChunk) %
              (curve.size() - kQuietChunk);
          service.price_batch_blocking(curve.data() + base, kQuietChunk,
                                       out.data());
          for (std::size_t i = 0; i < kQuietChunk; ++i) {
            if (out[i] != reference[base + i]) mismatches.fetch_add(1);
          }
          std::this_thread::sleep_for(std::chrono::microseconds{500});
        }
      });
    }
    while (ready.load() < submitters) std::this_thread::yield();
    const auto start = Clock::now();
    go.store(true, std::memory_order_release);
    while (spike_done.load(std::memory_order_acquire) < submitters) {
      std::this_thread::sleep_for(std::chrono::microseconds{50});
    }
    const double spike_s = seconds_since(start);
    for (auto& thread : threads) thread.join();

    const double ops =
        static_cast<double>(submitters * curve.size()) / spike_s;
    outcome.spike_ops = std::max(outcome.spike_ops, ops);
    outcome.stats += service.stats();
  }
  outcome.mismatches = mismatches.load();
  return outcome;
}

/// One measured dispatch policy in fleet mode.
struct FleetOutcome {
  double ops = 0.0;                     ///< best-of-reps curve throughput
  std::vector<std::uint64_t> served;    ///< per fleet index, measured reps
  core::service::ServiceStats stats;    ///< measured reps only (no warmup)
  std::size_t mismatches = 0;
};

/// Streams `reps` timed passes of the curve through `service` as
/// single-quote submissions; each Quote names the backend that priced it,
/// so parity is checked against that backend's own direct run. One
/// untimed warmup pass runs first: it builds every backend's pricer and —
/// with the fleet router on — lets the measured/predicted feedback
/// converge before the clock starts (the service, and thus the router's
/// learned corrections, persists across the timed reps).
FleetOutcome run_fleet(
    core::PricingService& service,
    const std::vector<finance::OptionSpec>& curve,
    const std::map<core::Target, std::vector<double>>& refs, int reps) {
  FleetOutcome outcome;
  std::vector<std::future<core::Quote>> futures;
  futures.reserve(curve.size());
  for (int pass = 0; pass < reps + 1; ++pass) {
    if (pass == 1) outcome.stats = service.stats();  // warmup snapshot
    futures.clear();
    const auto start = Clock::now();
    for (const auto& spec : curve) futures.push_back(service.submit(spec));
    for (std::size_t i = 0; i < futures.size(); ++i) {
      const core::Quote quote = futures[i].get();
      if (quote.price != refs.at(quote.target)[i]) ++outcome.mismatches;
    }
    const double ops =
        static_cast<double>(curve.size()) / seconds_since(start);
    if (pass > 0) outcome.ops = std::max(outcome.ops, ops);
  }
  outcome.stats = service.stats().minus(outcome.stats);
  outcome.served = outcome.stats.served_by_backend;
  return outcome;
}

/// The round-robin control the router replaces: option i goes to backend
/// i mod fleet-size — the canonical naive fleet dispatch (each backend is
/// its own single-target service, as in a load-balancer rotating across
/// appliances). Same warmup/timing discipline as run_fleet.
FleetOutcome run_round_robin(
    std::vector<std::unique_ptr<core::PricingService>>& services,
    const std::vector<finance::OptionSpec>& curve,
    const std::map<core::Target, std::vector<double>>& refs, int reps) {
  FleetOutcome outcome;
  outcome.served.assign(services.size(), 0);
  std::vector<std::future<core::Quote>> futures;
  futures.reserve(curve.size());
  for (int pass = 0; pass < reps + 1; ++pass) {
    futures.clear();
    const auto start = Clock::now();
    for (std::size_t i = 0; i < curve.size(); ++i) {
      futures.push_back(services[i % services.size()]->submit(curve[i]));
    }
    for (std::size_t i = 0; i < futures.size(); ++i) {
      const core::Quote quote = futures[i].get();
      if (quote.price != refs.at(quote.target)[i]) ++outcome.mismatches;
      if (pass > 0) ++outcome.served[i % services.size()];
    }
    const double ops =
        static_cast<double>(curve.size()) / seconds_since(start);
    if (pass > 0) outcome.ops = std::max(outcome.ops, ops);
  }
  return outcome;
}

/// served-weighted modelled J/option of one measured placement: what the
/// paper's power model says this traffic split cost per option.
double modelled_joules_per_option(const std::vector<core::Target>& targets,
                                  const std::vector<std::uint64_t>& served,
                                  std::size_t steps) {
  double joules = 0.0;
  double total = 0.0;
  for (std::size_t i = 0; i < targets.size(); ++i) {
    const std::uint64_t n = i < served.size() ? served[i] : 0;
    if (n == 0) continue;
    const double jpo = energy::safe_joules_per_option(
        core::PricingAccelerator::modelled_options_per_second(targets[i],
                                                              steps),
        core::PricingAccelerator::modelled_power_watts(targets[i]));
    joules += static_cast<double>(n) * jpo;
    total += static_cast<double>(n);
  }
  return total > 0.0 ? joules / total : 0.0;
}

void print_fleet(const char* label, const std::vector<core::Target>& targets,
                 const FleetOutcome& outcome, double jpo) {
  std::printf("%-22s : %10.1f options/s | modelled %.3g J/option | served",
              label, outcome.ops, jpo);
  for (std::size_t i = 0; i < targets.size(); ++i) {
    const std::uint64_t n =
        i < outcome.served.size() ? outcome.served[i] : 0;
    std::printf(" %llu", static_cast<unsigned long long>(n));
  }
  std::printf("\n");
}

void print_bursty(const char* label, const BurstyOutcome& outcome) {
  std::printf("%-22s : %10.1f options/s spike | latency p50 %.3f ms, "
              "p99 %.3f ms, p999 %.3f ms\n",
              label, outcome.spike_ops,
              outcome.stats.request_latency_ns.p50() / 1e6,
              outcome.stats.request_latency_ns.p99() / 1e6,
              outcome.stats.request_latency_ns.p999() / 1e6);
}

/// Per-priority-class client-side ledger for one soak sweep point. Every
/// submitted request lands in exactly one outcome bucket (the future
/// either yields a Quote or throws a typed error), so conservation can be
/// asserted with == rather than a tolerance.
struct SoakTally {
  std::uint64_t issued = 0;
  std::uint64_t completed = 0;
  std::uint64_t shed = 0;       ///< ServiceOverloadError at admission
  std::uint64_t timed_out = 0;  ///< ServiceTimeoutError (any deadline site)
  std::uint64_t failed = 0;     ///< anything else (must stay 0: no faults)
  std::uint64_t browned = 0;    ///< completions with Quote::browned_out
  std::uint64_t parity_mismatches = 0;  ///< un-browned price != reference
  std::vector<std::uint64_t> latency_ns;  ///< submit -> Quote, completions

  SoakTally& operator+=(const SoakTally& other) {
    issued += other.issued;
    completed += other.completed;
    shed += other.shed;
    timed_out += other.timed_out;
    failed += other.failed;
    browned += other.browned;
    parity_mismatches += other.parity_mismatches;
    latency_ns.insert(latency_ns.end(), other.latency_ns.begin(),
                      other.latency_ns.end());
    return *this;
  }
};

/// One arrival-rate point of the soak sweep.
struct SoakPoint {
  double multiplier = 0.0;     ///< arrival rate as a fraction of capacity
  double target_rate = 0.0;    ///< requests/s the schedule aimed for
  double achieved_rate = 0.0;  ///< issued / wall-clock (drain included)
  double elapsed_s = 0.0;
  std::array<SoakTally, core::kPriorityCount> per_class;
  core::service::ServiceStats stats;
};

std::uint64_t percentile_ns(std::vector<std::uint64_t> values, double pct) {
  if (values.empty()) return 0;
  const auto rank = static_cast<std::size_t>(
      pct / 100.0 * static_cast<double>(values.size() - 1));
  std::nth_element(values.begin(), values.begin() + rank, values.end());
  return values[rank];
}

/// Uncontended capacity probe: one closed-loop pass of the curve per
/// submitter through a service with the overload layer disarmed — the raw
/// spine's sustainable options/s, which the sweep's arrival rates are
/// multiples of.
double measure_soak_capacity(core::ServiceConfig config,
                             const std::vector<finance::OptionSpec>& curve,
                             std::size_t submitters) {
  config.overload = {};
  core::PricingService service(config);
  constexpr std::size_t kChunk = 32;
  std::atomic<std::size_t> ready{0};
  std::atomic<bool> go{false};
  std::vector<std::thread> threads;
  threads.reserve(submitters);
  for (std::size_t sub = 0; sub < submitters; ++sub) {
    threads.emplace_back([&] {
      std::vector<double> out(kChunk);
      ready.fetch_add(1);
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      for (std::size_t base = 0; base < curve.size(); base += kChunk) {
        const std::size_t n = std::min(kChunk, curve.size() - base);
        service.price_batch_blocking(curve.data() + base, n, out.data());
      }
    });
  }
  while (ready.load() < submitters) std::this_thread::yield();
  const auto start = Clock::now();
  go.store(true, std::memory_order_release);
  for (auto& thread : threads) thread.join();
  return static_cast<double>(submitters * curve.size()) /
         seconds_since(start);
}

/// One open-loop sweep point: `submitters` threads share a fixed global
/// arrival schedule (request k is due at start + k/rate; thread k%S owns
/// it), each submitting single quotes with the mix's deterministic class
/// assignment and harvesting its own resolved futures as it goes (so the
/// outstanding window stays small and latency is read promptly after
/// resolution). A thread that falls behind schedule — e.g. blocked on
/// realtime backpressure — submits back-to-back until it catches up,
/// which is exactly how an overloaded open-loop client behaves.
SoakPoint run_soak_point(const core::ServiceConfig& config,
                         const std::vector<finance::OptionSpec>& curve,
                         const std::vector<double>& reference,
                         std::size_t requests, double rate, double multiplier,
                         core::service::PriorityMix mix,
                         std::size_t submitters,
                         std::chrono::milliseconds timeout) {
  SoakPoint point;
  point.multiplier = multiplier;
  point.target_rate = rate;
  core::PricingService service(config);
  std::vector<std::array<SoakTally, core::kPriorityCount>> tallies(
      submitters);
  std::atomic<std::size_t> ready{0};
  std::atomic<bool> go{false};
  Clock::time_point start;  // written before go releases, read after acquire
  std::vector<std::thread> threads;
  threads.reserve(submitters);
  for (std::size_t sub = 0; sub < submitters; ++sub) {
    threads.emplace_back([&, sub] {
      struct Outstanding {
        std::future<core::Quote> future;
        Clock::time_point issued_at;
        std::uint32_t spec_index;
        std::uint8_t cls;
      };
      std::deque<Outstanding> pending;
      auto& mine = tallies[sub];
      const auto harvest = [&](bool block) {
        while (!pending.empty()) {
          Outstanding& front = pending.front();
          if (!block && front.future.wait_for(std::chrono::seconds{0}) !=
                            std::future_status::ready) {
            break;
          }
          SoakTally& tally = mine[front.cls];
          try {
            const core::Quote quote = front.future.get();
            tally.latency_ns.push_back(static_cast<std::uint64_t>(
                std::chrono::duration_cast<std::chrono::nanoseconds>(
                    Clock::now() - front.issued_at)
                    .count()));
            ++tally.completed;
            if (quote.browned_out) {
              ++tally.browned;
            } else if (quote.price != reference[front.spec_index]) {
              ++tally.parity_mismatches;
            }
          } catch (const core::ServiceTimeoutError&) {
            ++tally.timed_out;
          } catch (const std::exception&) {
            ++tally.failed;
          }
          pending.pop_front();
        }
      };
      ready.fetch_add(1);
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      for (std::size_t k = sub; k < requests; k += submitters) {
        const auto due =
            start + std::chrono::nanoseconds(static_cast<std::int64_t>(
                        static_cast<double>(k) * 1e9 / rate));
        if (due > Clock::now()) std::this_thread::sleep_until(due);
        const core::Priority priority = mix.pick(k);
        const auto cls = static_cast<std::uint8_t>(priority);
        const auto spec_index = static_cast<std::uint32_t>(k % curve.size());
        ++mine[cls].issued;
        const auto issued_at = Clock::now();
        try {
          pending.push_back({service.submit(curve[spec_index], timeout,
                                            /*cache_tag=*/0, priority),
                             issued_at, spec_index, cls});
        } catch (const core::ServiceOverloadError&) {
          ++mine[cls].shed;
        }
        harvest(/*block=*/false);
      }
      harvest(/*block=*/true);
    });
  }
  while (ready.load() < submitters) std::this_thread::yield();
  start = Clock::now();
  go.store(true, std::memory_order_release);
  for (auto& thread : threads) thread.join();
  point.elapsed_s = seconds_since(start);
  point.stats = service.stats();
  for (auto& per_thread : tallies) {
    for (std::size_t cls = 0; cls < core::kPriorityCount; ++cls) {
      point.per_class[cls] += per_thread[cls];
    }
  }
  std::uint64_t issued = 0;
  for (const SoakTally& tally : point.per_class) issued += tally.issued;
  point.achieved_rate =
      point.elapsed_s > 0.0
          ? static_cast<double>(issued) / point.elapsed_s
          : 0.0;
  return point;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t num_options = 2000;
  std::size_t steps = 256;
  // Pricing workers are CPU-bound simulator threads; more workers than
  // host cores only thrash, so default to 2 where the host can run them.
  std::size_t workers =
      std::max<std::size_t>(1, std::min<std::size_t>(
                                   2, std::thread::hardware_concurrency()));
  core::Target target = core::Target::kCpuReference;
  std::string mode = "curve";
  std::size_t submitters = 8;
  int reps = 2;
  std::string json_out;

  // Soak-mode knobs (all ignored by the other modes).
  std::size_t soak_requests = 1000000;
  std::string sweep_text = "0.5,1,2,4";
  std::string mix_text = "20/50/30";
  double shed_watermark = 0.75;
  long sojourn_target_us = 2000;
  long timeout_ms = 250;
  bool brownout = false;

  bool options_set = false;
  bool steps_set = false;

  for (int i = 1; i + 1 < argc; i += 2) {
    const std::string flag = argv[i];
    const char* value = argv[i + 1];
    if (flag == "--options") {
      num_options = std::strtoul(value, nullptr, 10);
      options_set = true;
    }
    else if (flag == "--steps") {
      steps = std::strtoul(value, nullptr, 10);
      steps_set = true;
    }
    else if (flag == "--workers") workers = std::strtoul(value, nullptr, 10);
    else if (flag == "--mode") mode = value;
    else if (flag == "--submitters") submitters = std::strtoul(value, nullptr, 10);
    else if (flag == "--reps") reps = static_cast<int>(std::strtol(value, nullptr, 10));
    else if (flag == "--json-out") json_out = value;
    else if (flag == "--requests") soak_requests = std::strtoul(value, nullptr, 10);
    else if (flag == "--sweep") sweep_text = value;
    else if (flag == "--priority-mix") mix_text = value;
    else if (flag == "--shed-watermark") shed_watermark = std::strtod(value, nullptr);
    else if (flag == "--sojourn-target-us") sojourn_target_us = std::strtol(value, nullptr, 10);
    else if (flag == "--timeout-ms") timeout_ms = std::strtol(value, nullptr, 10);
    else if (flag == "--brownout") brownout = std::strtol(value, nullptr, 10) != 0;
    else if (flag == "--target") {
      bool found = false;
      for (core::Target t : core::all_targets()) {
        if (core::to_string(t) == value) { target = t; found = true; }
      }
      if (!found) {
        std::fprintf(stderr, "unknown target '%s'\n", value);
        return 2;
      }
    } else {
      std::fprintf(stderr, "unknown flag '%s'\n", flag.c_str());
      return 2;
    }
  }
  if (mode != "curve" && mode != "bursty" && mode != "fleet" &&
      mode != "greeks" && mode != "soak") {
    std::fprintf(stderr,
                 "unknown mode '%s' (curve|bursty|fleet|greeks|soak)\n",
                 mode.c_str());
    return 2;
  }
  if (reps < 1) reps = 1;
  if (submitters < 1) submitters = 1;
  // Fleet mode prices through simulated OpenCL backends, which run orders
  // of magnitude slower per option than the native batch pricer — default
  // to a smaller workload so the CI perf-smoke stays quick.
  if (mode == "fleet") {
    if (!options_set) num_options = 512;
    if (!steps_set) steps = 64;
  }
  // Greeks mode prices 4 legs per request plus a host-side lattice front;
  // default to a smaller book so the one-leg-per-submit baseline stays
  // affordable in the CI perf-smoke.
  if (mode == "greeks" && !options_set) num_options = 512;
  // Soak mode is a queueing benchmark, not a lattice benchmark: shallow
  // trees keep the per-option cost low so the arrival sweep exercises
  // admission, shedding, and deadlines rather than raw pricing.
  if (mode == "soak" && !steps_set) steps = 64;

  const auto curve = finance::make_curve_batch(num_options);

  // Reference for parity (and the direct-call throughput figure): one
  // direct run of the whole curve on a private accelerator.
  core::PricingAccelerator direct({target, steps, /*compute_rmse=*/false});
  const auto direct_start = Clock::now();
  const std::vector<double> reference = direct.run(curve).prices;
  const double direct_s = seconds_since(direct_start);
  const double direct_ops = static_cast<double>(curve.size()) / direct_s;

  if (mode == "soak") {
    core::service::PriorityMix mix;
    try {
      mix = core::service::parse_priority_mix(mix_text);
    } catch (const std::exception& error) {
      std::fprintf(stderr, "bad --priority-mix '%s': %s\n", mix_text.c_str(),
                   error.what());
      return 2;
    }
    std::vector<double> sweep;
    for (const char* cursor = sweep_text.c_str(); *cursor != '\0';) {
      char* end = nullptr;
      const double mult = std::strtod(cursor, &end);
      if (end == cursor || mult <= 0.0) {
        std::fprintf(stderr,
                     "bad --sweep '%s' (comma-separated positive capacity "
                     "multipliers)\n",
                     sweep_text.c_str());
        return 2;
      }
      sweep.push_back(mult);
      cursor = end;
      if (*cursor == ',') ++cursor;
    }
    if (sweep.empty() || shed_watermark <= 0.0 || shed_watermark > 1.0 ||
        sojourn_target_us <= 0 || timeout_ms <= 0) {
      std::fprintf(stderr,
                   "soak needs a non-empty --sweep, --shed-watermark in "
                   "(0,1], and positive --sojourn-target-us/--timeout-ms\n");
      return 2;
    }

    // Cache off so every admitted request actually prices (replay would
    // let the overloaded points coast); modest queue and batch so the
    // sweep saturates admission rather than memory.
    core::ServiceConfig base;
    base.targets.assign(workers, target);
    base.steps = steps;
    base.max_batch = 64;
    base.linger = std::chrono::microseconds{100};
    base.cache_capacity = 0;
    base.queue_capacity = 1024;
    core::ServiceConfig armed = base;
    armed.overload.shed_watermark = shed_watermark;
    armed.overload.sojourn_target =
        std::chrono::microseconds{sojourn_target_us};
    armed.overload.brownout = brownout;

    std::printf("=================================================================\n");
    std::printf("Service throughput — overload soak (priority admission + shedding)\n");
    std::printf("  target=%s requests=%zu steps=%zu workers=%zu submitters=%zu\n"
                "  mix=%s timeout=%ldms watermark=%.2f sojourn-target=%ldus "
                "brownout=%s\n",
                core::to_string(target).c_str(), soak_requests, steps, workers,
                submitters, mix_text.c_str(), timeout_ms, shed_watermark,
                sojourn_target_us, brownout ? "on" : "off");
    std::printf("=================================================================\n\n");

    const double capacity = measure_soak_capacity(base, curve, submitters);
    std::printf("uncontended capacity   : %10.1f options/s (closed loop, "
                "shedding disarmed)\n\n",
                capacity);

    const std::size_t per_point =
        std::max<std::size_t>(1, soak_requests / sweep.size());
    std::vector<SoakPoint> points;
    points.reserve(sweep.size());
    for (const double mult : sweep) {
      points.push_back(run_soak_point(
          armed, curve, reference, per_point, mult * capacity, mult, mix,
          submitters, std::chrono::milliseconds{timeout_ms}));
      const SoakPoint& point = points.back();
      std::uint64_t issued = 0, completed = 0, shed = 0, timed = 0;
      for (const SoakTally& tally : point.per_class) {
        issued += tally.issued;
        completed += tally.completed;
        shed += tally.shed;
        timed += tally.timed_out;
      }
      const auto rt = static_cast<std::size_t>(core::Priority::kRealtime);
      std::printf("x%-5.2f %9.0f req/s : issued %8llu | completed %8llu | "
                  "shed %7llu | timed-out %6llu | rt p99 %8.3f ms\n",
                  point.multiplier, point.target_rate,
                  static_cast<unsigned long long>(issued),
                  static_cast<unsigned long long>(completed),
                  static_cast<unsigned long long>(shed),
                  static_cast<unsigned long long>(timed),
                  percentile_ns(point.per_class[rt].latency_ns, 99.0) / 1e6);
    }

    // Exact conservation, per class and cross-checked against the
    // service's own ledger: nothing is ever silently dropped.
    bool conserved = true;
    std::uint64_t issued = 0, completed = 0, shed = 0, timed = 0, failed = 0,
                  browned = 0, mismatches = 0;
    for (const SoakPoint& point : points) {
      std::uint64_t point_issued = 0, point_completed = 0, point_shed = 0,
                    point_timed = 0, point_failed = 0;
      for (const SoakTally& tally : point.per_class) {
        conserved = conserved &&
                    tally.issued == tally.completed + tally.shed +
                                        tally.timed_out + tally.failed;
        point_issued += tally.issued;
        point_completed += tally.completed;
        point_shed += tally.shed;
        point_timed += tally.timed_out;
        point_failed += tally.failed;
        browned += tally.browned;
        mismatches += tally.parity_mismatches;
      }
      const core::service::ServiceStats& stats = point.stats;
      conserved =
          conserved &&
          stats.requests_shed_normal + stats.requests_shed_batch ==
              point_shed &&
          stats.requests_submitted == point_issued - point_shed &&
          stats.requests_completed == point_completed &&
          stats.requests_timed_out == point_timed &&
          stats.requests_failed == point_failed &&
          stats.requests_completed + stats.requests_timed_out +
                  stats.requests_failed ==
              stats.requests_submitted;
      issued += point_issued;
      completed += point_completed;
      shed += point_shed;
      timed += point_timed;
      failed += point_failed;
    }
    // kRealtime never sheds, by contract.
    const auto rt = static_cast<std::size_t>(core::Priority::kRealtime);
    for (const SoakPoint& point : points) {
      conserved = conserved && point.per_class[rt].shed == 0;
    }

    const double p99_base_ms =
        percentile_ns(points.front().per_class[rt].latency_ns, 99.0) / 1e6;
    const double p99_over_ms =
        percentile_ns(points.back().per_class[rt].latency_ns, 99.0) / 1e6;
    const bool p99_gate = points.size() >= 2 &&
                          points.back().multiplier > 1.0 &&
                          points.front().per_class[rt].latency_ns.size() >=
                              100 &&
                          points.back().per_class[rt].latency_ns.size() >= 100;
    const core::service::ServiceStats& over = points.back().stats;
    std::printf("\nrealtime p99           : %10.3f ms uncontended -> %.3f ms "
                "at x%.1f%s\n",
                p99_base_ms, p99_over_ms, points.back().multiplier,
                p99_gate ? "" : " (gate skipped: too few realtime samples)");
    std::printf("admission block (x%.1f) : p50 %.3f ms, p99 %.3f ms over "
                "%llu stalls\n",
                points.back().multiplier,
                over.admission_block_ns.p50() / 1e6,
                over.admission_block_ns.p99() / 1e6,
                static_cast<unsigned long long>(
                    over.admission_block_ns.count()));
    std::printf("totals                 : issued %llu = completed %llu + "
                "shed %llu + timed-out %llu + failed %llu | browned-out %llu\n\n",
                static_cast<unsigned long long>(issued),
                static_cast<unsigned long long>(completed),
                static_cast<unsigned long long>(shed),
                static_cast<unsigned long long>(timed),
                static_cast<unsigned long long>(failed),
                static_cast<unsigned long long>(browned));

    const std::string row = format_row(
        "{\"benchmark\":\"service_throughput\",\"mode\":\"soak\","
        "\"target\":\"%s\",\"requests\":%llu,\"steps\":%zu,\"workers\":%zu,"
        "\"submitters\":%zu,\"sweep\":\"%s\",\"priority_mix\":\"%s\","
        "\"timeout_ms\":%ld,\"shed_watermark\":%.3f,"
        "\"sojourn_target_us\":%ld,\"brownout\":%s,"
        "\"capacity_options_per_second\":%.1f,"
        "\"issued\":%llu,\"completed\":%llu,\"shed\":%llu,"
        "\"timed_out\":%llu,\"failed\":%llu,\"brownout_completions\":%llu,"
        "\"realtime_p99_uncontended_ms\":%.4f,"
        "\"realtime_p99_overloaded_ms\":%.4f,"
        "\"admission_block_p99_ms\":%.4f,\"parity_mismatches\":%llu,"
        "\"conserved\":%s}",
        core::to_string(target).c_str(),
        static_cast<unsigned long long>(issued), steps, workers, submitters,
        sweep_text.c_str(), mix_text.c_str(), timeout_ms, shed_watermark,
        sojourn_target_us, brownout ? "true" : "false", capacity,
        static_cast<unsigned long long>(issued),
        static_cast<unsigned long long>(completed),
        static_cast<unsigned long long>(shed),
        static_cast<unsigned long long>(timed),
        static_cast<unsigned long long>(failed),
        static_cast<unsigned long long>(browned), p99_base_ms, p99_over_ms,
        over.admission_block_ns.p99() / 1e6,
        static_cast<unsigned long long>(mismatches),
        conserved ? "true" : "false");
    emit_json(row, json_out);

    if (!conserved) {
      std::fprintf(stderr,
                   "FAIL: request conservation violated (client ledger and "
                   "service counters disagree)\n");
      return 1;
    }
    if (failed != 0) {
      std::fprintf(stderr,
                   "FAIL: %llu requests failed with unexpected errors (soak "
                   "injects no faults)\n",
                   static_cast<unsigned long long>(failed));
      return 1;
    }
    if (mismatches != 0) {
      std::fprintf(stderr,
                   "FAIL: %llu un-browned-out completions diverge from the "
                   "direct run\n",
                   static_cast<unsigned long long>(mismatches));
      return 1;
    }
    // The overload gate (reference target): shedding must keep the
    // realtime class's completion latency bounded while the service is
    // driven past capacity. The 25ms slack absorbs scheduler jitter on
    // shared CI runners; on an idle host the margin is far wider.
    if (target == core::Target::kCpuReference && p99_gate &&
        p99_over_ms > 2.0 * p99_base_ms + 25.0) {
      std::fprintf(stderr,
                   "FAIL: realtime p99 ballooned under overload (%.3f ms at "
                   "x%.1f vs %.3f ms uncontended)\n",
                   p99_over_ms, points.back().multiplier, p99_base_ms);
      return 1;
    }
    return 0;
  }

  if (mode == "greeks") {
    std::printf("=================================================================\n");
    std::printf("Service throughput — GreeksService batch expansion vs one leg at a time\n");
    std::printf("  target=%s requests=%zu steps=%zu workers=%zu reps=%d\n",
                core::to_string(target).c_str(), num_options, steps, workers,
                reps);
    std::printf("=================================================================\n\n");

    // Direct reference: the same lattice fronts and bump sets the service
    // uses, with all four legs per request priced by one private
    // accelerator run — parity must hold bit for bit.
    std::vector<finance::GreeksBumpSet> sets;
    sets.reserve(curve.size());
    std::vector<finance::OptionSpec> legs;
    legs.reserve(4 * curve.size());
    std::vector<finance::Greeks> expected;
    expected.reserve(curve.size());
    for (const finance::OptionSpec& spec : curve) {
      sets.push_back(finance::GreeksBumpSet::from(spec, steps));
      legs.push_back(sets.back().vega_up);
      legs.push_back(sets.back().vega_down);
      legs.push_back(sets.back().rho_up);
      legs.push_back(sets.back().rho_down);
    }
    const std::vector<double> leg_prices = direct.run(legs).prices;
    for (std::size_t i = 0; i < curve.size(); ++i) {
      expected.push_back(finance::assemble_greeks(
          finance::lattice_front_greeks(curve[i], steps), sets[i],
          leg_prices[4 * i], leg_prices[4 * i + 1], leg_prices[4 * i + 2],
          leg_prices[4 * i + 3]));
    }
    const auto greeks_equal = [](const finance::Greeks& a,
                                 const finance::Greeks& b) {
      return a.price == b.price && a.delta == b.delta && a.gamma == b.gamma &&
             a.theta == b.theta && a.vega == b.vega && a.rho == b.rho;
    };

    // Cache off on both sides: this measures what fanning 4n legs through
    // the micro-batcher as one job buys, not cache replay.
    core::ServiceConfig base;
    base.targets.assign(workers, target);
    base.steps = steps;
    base.cache_capacity = 0;

    // Baseline: every bump leg is its own NDRange launch.
    core::ServiceConfig one_leg = base;
    one_leg.max_batch = 1;
    one_leg.linger = std::chrono::microseconds{0};
    double baseline_s = 0.0;
    std::size_t mismatches = 0;
    for (int rep = 0; rep < reps; ++rep) {
      core::PricingService service(one_leg);
      core::GreeksService greeks(service);
      const auto start = Clock::now();
      const std::vector<core::GreeksQuote> out =
          greeks.greeks_batch_blocking(curve);
      const double elapsed = seconds_since(start);
      if (rep == 0 || elapsed < baseline_s) baseline_s = elapsed;
      for (std::size_t i = 0; i < curve.size(); ++i) {
        if (!greeks_equal(out[i].greeks, expected[i])) ++mismatches;
      }
    }
    const double baseline_ops =
        static_cast<double>(curve.size()) / baseline_s;

    // Batched: the whole book's legs ride the micro-batcher together.
    core::ServiceConfig batched = base;
    batched.max_batch = 256;
    batched.linger = std::chrono::microseconds{200};
    double batched_s = 0.0;
    for (int rep = 0; rep < reps; ++rep) {
      core::PricingService service(batched);
      core::GreeksService greeks(service);
      const auto start = Clock::now();
      const std::vector<core::GreeksQuote> out =
          greeks.greeks_batch_blocking(curve);
      const double elapsed = seconds_since(start);
      if (rep == 0 || elapsed < batched_s) batched_s = elapsed;
      for (std::size_t i = 0; i < curve.size(); ++i) {
        if (!greeks_equal(out[i].greeks, expected[i])) ++mismatches;
      }
    }
    const double batched_ops = static_cast<double>(curve.size()) / batched_s;
    const double speedup = batched_ops / baseline_ops;

    std::printf("direct batch run       : %10.1f options/s (%s)\n",
                direct_ops, core::to_string(target).c_str());
    std::printf("one-leg-per-submit     : %10.1f greeks/s (%.3f s)\n",
                baseline_ops, baseline_s);
    std::printf("batched GreeksService  : %10.1f greeks/s (%.3f s, %.2fx)\n\n",
                batched_ops, batched_s, speedup);

    const std::string row = format_row(
        "{\"benchmark\":\"service_throughput\",\"mode\":\"greeks\","
        "\"target\":\"%s\",\"requests\":%zu,\"legs\":%zu,\"steps\":%zu,"
        "\"workers\":%zu,\"reps\":%d,"
        "\"options_per_second\":%.1f,\"baseline_options_per_second\":%.1f,"
        "\"speedup_vs_baseline\":%.3f,\"direct_options_per_second\":%.1f}",
        core::to_string(target).c_str(), num_options, legs.size(), steps,
        workers, reps, batched_ops, baseline_ops, speedup, direct_ops);
    emit_json(row, json_out);

    if (mismatches != 0) {
      std::fprintf(stderr,
                   "FAIL: %zu Greeks differ from the direct reference\n",
                   mismatches);
      return 1;
    }
    // The batching gate (reference target): expanding requests through
    // the micro-batcher must not lose to submitting one leg at a time.
    if (target == core::Target::kCpuReference && speedup < 1.0) {
      std::fprintf(stderr,
                   "FAIL: batched Greeks throughput (%.1f/s) below the "
                   "one-leg-per-submit baseline (%.1f/s)\n",
                   batched_ops, baseline_ops);
      return 1;
    }
    return 0;
  }

  if (mode == "fleet") {
    // A deliberately lopsided fleet: the paper's three platform classes
    // side by side. The routed baseline must stay deterministic, so the
    // env knob cannot silently turn the control run into a router run.
    unsetenv("BINOPT_SERVICE_ROUTER");
    const std::vector<core::Target> fleet = {core::Target::kCpuReference,
                                             core::Target::kGpuKernelB,
                                             core::Target::kFpgaKernelB};
    std::printf("=================================================================\n");
    std::printf("Service throughput — heterogeneous fleet, router vs shared queue\n");
    std::printf("  options=%zu steps=%zu reps=%d fleet=", num_options, steps,
                reps);
    for (std::size_t i = 0; i < fleet.size(); ++i) {
      std::printf("%s%s", i ? "+" : "", core::to_string(fleet[i]).c_str());
    }
    std::printf("\n=================================================================\n\n");

    // Per-backend parity references: each quote must match the direct run
    // of whichever backend priced it, bit for bit.
    std::map<core::Target, std::vector<double>> refs;
    for (const core::Target t : fleet) {
      core::PricingAccelerator ref({t, steps, /*compute_rmse=*/false});
      refs.emplace(t, ref.run(curve).prices);
    }

    core::ServiceConfig base;
    base.targets = fleet;
    base.steps = steps;
    base.max_batch = 64;
    base.linger = std::chrono::microseconds{200};
    base.cache_capacity = 0;  // dispatch benchmark, not cache replay

    // Control: round-robin — option i to backend i mod 3, each backend a
    // single-target service. The naive dispatch the router replaces: a
    // third of the spike lands on the slowest backend regardless of cost.
    std::vector<std::unique_ptr<core::PricingService>> rr_services;
    for (const core::Target t : fleet) {
      core::ServiceConfig solo = base;
      solo.targets = {t};
      rr_services.push_back(std::make_unique<core::PricingService>(solo));
    }
    const FleetOutcome rr_run =
        run_round_robin(rr_services, curve, refs, reps);
    const double jpo_rr =
        modelled_joules_per_option(fleet, rr_run.served, steps);

    // Context row, not a gate: the single service's shared FIFO (workers
    // pull chunks at their own pace — greedy work stealing).
    core::PricingService shared_service(base);
    const FleetOutcome shared_run =
        run_fleet(shared_service, curve, refs, reps);
    const double jpo_shared =
        modelled_joules_per_option(fleet, shared_run.served, steps);

    // Router, latency policy: feedback-corrected completion-time placement.
    core::ServiceConfig routed = base;
    routed.router.policy = core::service::RouterPolicy::kLatency;
    core::PricingService routed_service(routed);
    const FleetOutcome routed_run =
        run_fleet(routed_service, curve, refs, reps);
    const double jpo_routed =
        modelled_joules_per_option(fleet, routed_run.served, steps);

    // Router, energy policy: steer the fleet toward the most frugal
    // modelled J/option under a watts budget that only the leanest
    // backend(s) satisfy.
    double min_watts = std::numeric_limits<double>::infinity();
    for (const core::Target t : fleet) {
      min_watts = std::min(min_watts,
                           core::PricingAccelerator::modelled_power_watts(t));
    }
    core::ServiceConfig frugal = base;
    frugal.router.policy = core::service::RouterPolicy::kEnergyBudget;
    frugal.router.watts_budget = min_watts + 1.0;
    core::PricingService frugal_service(frugal);
    const FleetOutcome frugal_run =
        run_fleet(frugal_service, curve, refs, reps);
    const double jpo_frugal =
        modelled_joules_per_option(fleet, frugal_run.served, steps);

    const double speedup = routed_run.ops / rr_run.ops;
    std::printf("direct batch run       : %10.1f options/s (%s)\n",
                direct_ops, core::to_string(target).c_str());
    print_fleet("round-robin (control)", fleet, rr_run, jpo_rr);
    print_fleet("shared queue", fleet, shared_run, jpo_shared);
    print_fleet("router, latency", fleet, routed_run, jpo_routed);
    print_fleet("router, energy budget", fleet, frugal_run, jpo_frugal);
    std::printf("router speedup         : %10.2fx vs round-robin | model "
                "fit p50 %.2fx | %llu routed, %llu misrouted\n\n",
                speedup,
                routed_run.stats.predicted_vs_measured.p50() / 1000.0,
                static_cast<unsigned long long>(
                    routed_run.stats.requests_routed),
                static_cast<unsigned long long>(
                    routed_run.stats.requests_misrouted));

    const std::string row = format_row(
        "{\"benchmark\":\"service_throughput\",\"mode\":\"fleet\","
        "\"targets\":\"cpu+gpu+fpga\",\"options\":%zu,\"steps\":%zu,"
        "\"reps\":%d,\"options_per_second\":%.1f,"
        "\"baseline_options_per_second\":%.1f,\"speedup_vs_baseline\":%.3f,"
        "\"shared_queue_options_per_second\":%.1f,"
        "\"joules_per_option\":%.6g,\"baseline_joules_per_option\":%.6g,"
        "\"energy_joules_per_option\":%.6g,\"energy_options_per_second\":%.1f,"
        "\"requests_misrouted\":%llu}",
        num_options, steps, reps, routed_run.ops, rr_run.ops, speedup,
        shared_run.ops, jpo_routed, jpo_rr, jpo_frugal, frugal_run.ops,
        static_cast<unsigned long long>(routed_run.stats.requests_misrouted));
    emit_json(row, json_out);

    const std::size_t mismatches = rr_run.mismatches + shared_run.mismatches +
                                   routed_run.mismatches +
                                   frugal_run.mismatches;
    if (mismatches != 0) {
      std::fprintf(stderr,
                   "FAIL: %zu price mismatches vs the per-backend direct "
                   "runs\n",
                   mismatches);
      return 1;
    }
    // The routing gates: corrected-model placement must not lose to the
    // round-robin dispatch it replaces, and the energy policy must price
    // at least as frugally (modelled J/option) as the round-robin mix.
    if (speedup < 1.0) {
      std::fprintf(stderr,
                   "FAIL: router throughput (%.1f options/s) below the "
                   "round-robin control (%.1f options/s)\n",
                   routed_run.ops, rr_run.ops);
      return 1;
    }
    if (jpo_frugal > jpo_rr) {
      std::fprintf(stderr,
                   "FAIL: energy-budget policy (%.6g J/option) costs more "
                   "than the round-robin mix (%.6g J/option)\n",
                   jpo_frugal, jpo_rr);
      return 1;
    }
    return 0;
  }

  if (mode == "bursty") {
    std::printf("=================================================================\n");
    std::printf("Service throughput — bursty (market-open spike) arrivals\n");
    std::printf("  target=%s options=%zu steps=%zu workers=%zu submitters=%zu reps=%d\n",
                core::to_string(target).c_str(), num_options, steps, workers,
                submitters, reps);
    std::printf("=================================================================\n\n");

    // Cache off: bursty mode measures the pricing hot path, not replay.
    core::ServiceConfig base;
    base.targets.assign(workers, target);
    base.steps = steps;
    base.max_batch = 256;
    base.linger = std::chrono::microseconds{200};
    base.cache_capacity = 0;

    // Baseline spine: the pre-redesign service — mutex+deque queue, scalar
    // CPU kernel. Identical traffic, workload, and batching parameters.
    core::ServiceConfig mutexed = base;
    mutexed.hot_path = core::HotPath::kMutex;
    finance::BatchPricer::set_simd_override(0);
    const BurstyOutcome mutex_run =
        run_bursty(mutexed, curve, reference, submitters, reps);

    core::ServiceConfig lockfree = base;
    lockfree.hot_path = core::HotPath::kLockFree;
    finance::BatchPricer::set_simd_override(-1);
    const BurstyOutcome lockfree_run =
        run_bursty(lockfree, curve, reference, submitters, reps);

    const double speedup = lockfree_run.spike_ops / mutex_run.spike_ops;
    std::printf("direct batch run       : %10.1f options/s (%.3f s)\n",
                direct_ops, direct_s);
    print_bursty("mutex spine, scalar", mutex_run);
    print_bursty("lock-free spine, simd", lockfree_run);
    std::printf("spike speedup          : %10.2fx (simd %s)\n\n", speedup,
                finance::BatchPricer::simd_enabled() ? "on" : "off");

    const std::string row = format_row(
        "{\"benchmark\":\"service_throughput\",\"mode\":\"bursty\","
        "\"target\":\"%s\",\"options\":%zu,\"steps\":%zu,\"workers\":%zu,"
        "\"submitters\":%zu,\"reps\":%d,\"simd\":%s,"
        "\"options_per_second\":%.1f,\"baseline_options_per_second\":%.1f,"
        "\"speedup_vs_baseline\":%.3f,\"direct_options_per_second\":%.1f,"
        "\"latency_p50_ms\":%.4f,\"latency_p99_ms\":%.4f,"
        "\"latency_p999_ms\":%.4f,"
        "\"baseline_latency_p50_ms\":%.4f,\"baseline_latency_p99_ms\":%.4f,"
        "\"baseline_latency_p999_ms\":%.4f}",
        core::to_string(target).c_str(), num_options, steps, workers,
        submitters, reps,
        finance::BatchPricer::simd_enabled() ? "true" : "false",
        lockfree_run.spike_ops, mutex_run.spike_ops, speedup, direct_ops,
        lockfree_run.stats.request_latency_ns.p50() / 1e6,
        lockfree_run.stats.request_latency_ns.p99() / 1e6,
        lockfree_run.stats.request_latency_ns.p999() / 1e6,
        mutex_run.stats.request_latency_ns.p50() / 1e6,
        mutex_run.stats.request_latency_ns.p99() / 1e6,
        mutex_run.stats.request_latency_ns.p999() / 1e6);
    emit_json(row, json_out);

    if (mutex_run.mismatches != 0 || lockfree_run.mismatches != 0) {
      std::fprintf(stderr,
                   "FAIL: %zu price mismatches vs the direct run\n",
                   mutex_run.mismatches + lockfree_run.mismatches);
      return 1;
    }
    // The hot-path gate (reference target): the redesigned spine must not
    // lose to the spine it replaced under its own target workload. The
    // >=2x acceptance figure is tracked by CI against the checked-in
    // baseline row, where the runner is fixed.
    if (target == core::Target::kCpuReference && speedup < 1.0) {
      std::fprintf(stderr,
                   "FAIL: lock-free spike throughput (%.1f options/s) below "
                   "the mutexed baseline (%.1f options/s)\n",
                   lockfree_run.spike_ops, mutex_run.spike_ops);
      return 1;
    }
    return 0;
  }

  std::printf("=================================================================\n");
  std::printf("Service throughput — batched PricingService vs direct calls\n");
  std::printf("  target=%s options=%zu steps=%zu workers=%zu\n",
              core::to_string(target).c_str(), num_options, steps, workers);
  std::printf("=================================================================\n\n");

  // Each configuration is timed best-of-`reps` with a fresh service (and
  // thus a cold cache) per repetition: scheduler noise only ever slows a
  // pass down, so the faster repetition is the better estimate of real cost.
  std::vector<double> baseline_prices;
  std::vector<double> cold;

  // Baseline: the same service path with batching disabled — every option
  // is its own NDRange launch, paying full queue/launch overhead per quote.
  // Same submission machinery (and cache costs) on both sides, so the
  // comparison isolates exactly what micro-batching buys.
  core::ServiceConfig one_at_a_time;
  one_at_a_time.targets.assign(workers, target);
  one_at_a_time.steps = steps;
  one_at_a_time.max_batch = 1;
  one_at_a_time.linger = std::chrono::microseconds{0};
  one_at_a_time.cache_capacity = 4096;
  double baseline_s = 0.0;
  for (int rep = 0; rep < reps; ++rep) {
    core::PricingService service(one_at_a_time);
    const auto start = Clock::now();
    baseline_prices = service.submit_batch(curve).get();
    const double elapsed = seconds_since(start);
    if (rep == 0 || elapsed < baseline_s) baseline_s = elapsed;
  }
  const double baseline_ops = static_cast<double>(curve.size()) / baseline_s;

  core::ServiceConfig config;
  config.targets.assign(workers, target);
  config.steps = steps;
  config.max_batch = 256;
  config.linger = std::chrono::microseconds{200};
  config.cache_capacity = 4096;

  // Cold passes: every option priced through micro-batched shards. The last
  // repetition's service stays alive for the warm (cached) pass and stats.
  double cold_s = 0.0;
  std::optional<core::PricingService> service;
  for (int rep = 0; rep < reps; ++rep) {
    service.emplace(config);
    const auto start = Clock::now();
    cold = service->submit_batch(curve).get();
    const double elapsed = seconds_since(start);
    if (rep == 0 || elapsed < cold_s) cold_s = elapsed;
  }
  const double cold_ops = static_cast<double>(curve.size()) / cold_s;

  // Warm pass: the same curve on the next "market tick" — cache replay.
  const auto warm_start = Clock::now();
  const std::vector<double> warm = service->submit_batch(curve).get();
  const double warm_s = seconds_since(warm_start);
  const double warm_ops = static_cast<double>(curve.size()) / warm_s;

  const auto stats = service->stats();
  const double occupancy = stats.batch_occupancy(config.max_batch);

  std::printf("direct batch run       : %10.1f options/s (%.3f s)\n",
              direct_ops, direct_s);
  std::printf("one-at-a-time baseline : %10.1f options/s (%.3f s)\n",
              baseline_ops, baseline_s);
  std::printf("service, cold curve    : %10.1f options/s (%.3f s, %.2fx)\n",
              cold_ops, cold_s, cold_ops / baseline_ops);
  std::printf("service, warm curve    : %10.1f options/s (%.3f s, cached)\n",
              warm_ops, warm_s);
  std::printf("batches launched       : %llu (occupancy %.1f%%)\n",
              static_cast<unsigned long long>(stats.batches_launched),
              100.0 * occupancy);
  std::printf("cache                  : %llu hits / %llu misses (%.1f%% hit rate)\n",
              static_cast<unsigned long long>(stats.cache_hits),
              static_cast<unsigned long long>(stats.cache_misses),
              100.0 * stats.cache_hit_rate());
  std::printf("request latency        : p50 %.3f ms, p95 %.3f ms, "
              "p99 %.3f ms, p999 %.3f ms (mean %.3f ms)\n",
              stats.request_latency_ns.p50() / 1e6,
              stats.request_latency_ns.p95() / 1e6,
              stats.request_latency_ns.p99() / 1e6,
              stats.request_latency_ns.p999() / 1e6,
              stats.request_latency_ns.mean() / 1e6);
  std::printf("queue wait             : p50 %.3f ms, p95 %.3f ms, "
              "p99 %.3f ms\n\n",
              stats.queue_wait_ns.p50() / 1e6,
              stats.queue_wait_ns.p95() / 1e6,
              stats.queue_wait_ns.p99() / 1e6);

  const std::string row = format_row(
      "{\"benchmark\":\"service_throughput\",\"mode\":\"curve\","
      "\"target\":\"%s\","
      "\"options\":%zu,\"steps\":%zu,\"workers\":%zu,"
      "\"options_per_second\":%.1f,\"baseline_options_per_second\":%.1f,"
      "\"speedup_vs_baseline\":%.3f,\"direct_options_per_second\":%.1f,"
      "\"warm_options_per_second\":%.1f,"
      "\"cache_hit_rate\":%.4f,\"batch_occupancy\":%.4f,"
      "\"latency_p50_ms\":%.4f,\"latency_p95_ms\":%.4f,"
      "\"latency_p99_ms\":%.4f,\"latency_p999_ms\":%.4f,"
      "\"latency_mean_ms\":%.4f,"
      "\"queue_wait_p99_ms\":%.4f}",
      core::to_string(target).c_str(), num_options, steps, workers, cold_ops,
      baseline_ops, cold_ops / baseline_ops, direct_ops, warm_ops,
      stats.cache_hit_rate(), occupancy,
      stats.request_latency_ns.p50() / 1e6,
      stats.request_latency_ns.p95() / 1e6,
      stats.request_latency_ns.p99() / 1e6,
      stats.request_latency_ns.p999() / 1e6,
      stats.request_latency_ns.mean() / 1e6,
      stats.queue_wait_ns.p99() / 1e6);
  emit_json(row, json_out);

  if (baseline_prices != reference || cold != reference || warm != reference) {
    std::fprintf(stderr,
                 "FAIL: service prices diverge from the direct run\n");
    return 1;
  }
  // Throughput gate on the canonical workload (reference target): batching
  // must beat submitting one option at a time. Simulator-heavy kernel
  // targets trade launch amortization against working-set locality, so
  // they report but do not gate.
  if (target == core::Target::kCpuReference && cold_ops < baseline_ops) {
    std::fprintf(stderr,
                 "FAIL: batched throughput (%.1f options/s) below the "
                 "one-at-a-time baseline (%.1f options/s)\n",
                 cold_ops, baseline_ops);
    return 1;
  }
  return 0;
}
