// Experiment T1 — regenerates Table I: resource usage, clock frequency and
// power of the two kernels on the Stratix IV EP4SGX530, side by side with
// the paper's published values.
//
// Pipeline: kernel IR (kernels/ir_builders) -> HLS/fitter model with the
// published compile options -> clock + power models. The per-kernel
// calibration is derived from the published design point itself (see
// DESIGN.md Section 4); everything printed here is then re-checked against
// the paper row by row.
#include <cstdio>

#include "common/table.h"
#include "devices/calibration.h"
#include "fpga/report.h"
#include "kernels/ir_builders.h"

namespace {

using namespace binopt;

void print_comparison_row(const char* metric, double model_a, double paper_a,
                          double model_b, double paper_b, TextTable& table,
                          int precision = 0) {
  table.add_row({metric, TextTable::num(model_a, precision),
                 TextTable::num(paper_a, precision),
                 TextTable::num(model_b, precision),
                 TextTable::num(paper_b, precision)});
}

}  // namespace

int main() {
  std::printf("==============================================================\n");
  std::printf("T1: Table I — resource usage (Stratix IV EP4SGX530, N = 1024)\n");
  std::printf("==============================================================\n\n");

  fpga::Fitter fitter;
  fpga::ClockModel clock;
  fpga::PowerModel power;

  const auto ir_a = kernels::kernel_a_ir(1024);
  const auto ir_b = kernels::kernel_b_ir(1024);
  const auto opts_a = devices::kernel_a_published_options();
  const auto opts_b = devices::kernel_b_published_options();
  const auto cal_a =
      fitter.calibrate(ir_a, opts_a, devices::kernel_a_published_usage());
  const auto cal_b =
      fitter.calibrate(ir_b, opts_b, devices::kernel_b_published_usage());

  const auto point_a =
      fpga::characterize(fitter, clock, power, ir_a, opts_a, cal_a);
  const auto point_b =
      fpga::characterize(fitter, clock, power, ir_b, opts_b, cal_b);

  std::printf("%s\n",
              fpga::render_resource_table({point_a, point_b}, fitter.device())
                  .c_str());

  std::printf("Model vs paper (Kernel IV.A / Kernel IV.B):\n\n");
  TextTable cmp({"Metric", "IV.A model", "IV.A paper", "IV.B model",
                 "IV.B paper"});
  print_comparison_row("Logic utilization (%)",
                       point_a.fit.logic_utilization * 100.0, 99.0,
                       point_b.fit.logic_utilization * 100.0, 66.0, cmp);
  print_comparison_row("Registers (K)", point_a.fit.usage.registers / 1024.0,
                       411.0, point_b.fit.usage.registers / 1024.0, 245.0,
                       cmp);
  print_comparison_row("Memory bits (K)",
                       point_a.fit.usage.memory_bits / 1024.0, 10843.0,
                       point_b.fit.usage.memory_bits / 1024.0, 7990.0, cmp);
  print_comparison_row("M9K blocks", point_a.fit.usage.m9k, 1250.0,
                       point_b.fit.usage.m9k, 1118.0, cmp);
  print_comparison_row("DSP (18-bit)", point_a.fit.usage.dsp18, 586.0,
                       point_b.fit.usage.dsp18, 760.0, cmp);
  print_comparison_row("Clock frequency (MHz)", point_a.fmax_mhz, 98.27,
                       point_b.fmax_mhz, 162.62, cmp, 2);
  print_comparison_row("Power (W)", point_a.power.total(), 15.0,
                       point_b.power.total(), 17.0, cmp);
  std::printf("%s\n", cmp.render().c_str());

  std::printf(
      "Pipeline latency (model): IV.A %.0f cycles, IV.B %.0f cycles\n",
      point_a.fit.pipeline_latency_cycles, point_b.fit.pipeline_latency_cycles);
  std::printf(
      "Power breakdown: IV.A %.1f W static + %.1f W dynamic; "
      "IV.B %.1f W static + %.1f W dynamic\n",
      point_a.power.static_watts, point_a.power.dynamic_watts,
      point_b.power.static_watts, point_b.power.dynamic_watts);
  return 0;
}
