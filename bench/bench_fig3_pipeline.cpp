// Experiment F3 — the straightforward implementation's dataflow (Figure 3):
// pipeline occupancy as options stream through the flattened tree, the
// per-batch host cost decomposition (the full ping-pong readback stall of
// Section V-C), and measured traffic counters from a functional run.
#include <cstdio>

#include "common/table.h"
#include "common/units.h"
#include "finance/workload.h"
#include "kernels/indexing.h"
#include "kernels/kernel_a.h"
#include "ocl/platform.h"
#include "perf/platform_models.h"
#include "perf/timeline.h"

int main() {
  using namespace binopt;

  std::printf("=================================================================\n");
  std::printf("F3: Figure 3 — straightforward (dataflow) implementation, IV.A\n");
  std::printf("=================================================================\n\n");

  // --- Pipeline occupancy series: options in flight per batch ------------
  const std::size_t n = 8;
  const std::size_t num_options = 5;
  std::printf("Pipeline occupancy, N = %zu steps, %zu options "
              "(one option enters per batch, one exits after %zu batches):\n\n",
              n, num_options, n);
  TextTable occ({"Batch", "Options in flight", "Entering", "Completing"});
  for (std::size_t b = 0; b < num_options + n - 1; ++b) {
    std::size_t in_flight = 0;
    for (std::size_t t = 0; t < n; ++t) {
      const long long o = kernels::option_in_flight(
          static_cast<long long>(b), static_cast<long long>(t),
          static_cast<long long>(n));
      if (o >= 0 && o < static_cast<long long>(num_options)) ++in_flight;
    }
    occ.add_row({TextTable::integer(static_cast<long long>(b)),
                 TextTable::integer(static_cast<long long>(in_flight)),
                 b < num_options ? "option " + std::to_string(b) : "-",
                 b + 1 >= n ? "option " + std::to_string(b + 1 - n) : "-"});
  }
  std::printf("%s\n", occ.render().c_str());

  // --- Measured traffic from a functional run ----------------------------
  auto platform = ocl::Platform::make_reference_platform();
  ocl::Device& device = platform->device_by_kind(ocl::DeviceKind::kFpga);
  const std::size_t sim_steps = 64;
  const auto batch = finance::make_random_batch(16, 2014);
  kernels::KernelAHostProgram host(device, {.steps = sim_steps});
  const auto result = host.run(batch);
  std::printf("Functional run (N = %zu, %zu options, %zu batches):\n",
              sim_steps, batch.size(), result.batches);
  std::printf("  device->host per batch : %s (full ping-pong buffer)\n",
              format_bytes(static_cast<double>(result.stats.device_to_host_bytes) /
                           static_cast<double>(result.batches))
                  .c_str());
  std::printf("  host->device per batch : %s (entering option only)\n",
              format_bytes(static_cast<double>(result.stats.host_to_device_bytes) /
                           static_cast<double>(result.batches))
                  .c_str());
  std::printf("  kernel global traffic  : %s loads, %s stores\n",
              format_bytes(static_cast<double>(result.stats.global_load_bytes)).c_str(),
              format_bytes(static_cast<double>(result.stats.global_store_bytes)).c_str());
  std::printf("  barriers executed      : %llu (pure dataflow — none)\n\n",
              static_cast<unsigned long long>(result.stats.barriers_executed));

  // --- Modelled per-batch cost decomposition at the paper's N = 1024 -----
  std::printf("Modelled steady-state batch decomposition at N = 1024:\n\n");
  TextTable decomp({"Platform", "host overhead", "write", "kernel", "read",
                    "total/batch", "options/s"});
  auto add_platform = [&](const char* name, const perf::KernelAModel& model) {
    const perf::BatchBreakdown b = model.batch();
    decomp.add_row({name, format_seconds(b.host_overhead_s),
                    format_seconds(b.write_s), format_seconds(b.kernel_s),
                    format_seconds(b.read_s), format_seconds(b.total()),
                    TextTable::num(model.options_per_second(), 1)});
  };
  const perf::TreeShape shape{1024};
  add_platform("FPGA (DE4)", perf::PlatformModels::fpga_kernel_a(shape));
  add_platform("GPU (GTX660 Ti)", perf::PlatformModels::gpu_kernel_a(shape));
  std::printf("%s\n", decomp.render().c_str());
  std::printf("The ~19 MiB ping-pong readback per batch stalls the kernel "
              "(Section V-C): the read term dominates both platforms.\n\n");

  // --- Overlap analysis (Section IV-B: "Memory operations and work-items
  // executions are overlapped with one another and synchronized by the
  // host, but they still incur a cost in computation time.") -------------
  std::printf("Host-overlap analysis (20-batch timeline, FPGA):\n\n");
  const perf::BatchBreakdown fb =
      perf::PlatformModels::fpga_kernel_a(shape).batch();
  const perf::Timeline serial = perf::make_kernel_a_timeline(
      20, fb.host_overhead_s, fb.write_s, fb.kernel_s, fb.read_s, false);
  const perf::Timeline overlapped = perf::make_kernel_a_timeline(
      20, fb.host_overhead_s, fb.write_s, fb.kernel_s, fb.read_s, true);
  std::printf("  fully serial host loop : %s for 20 batches\n",
              format_seconds(serial.makespan()).c_str());
  std::printf("  overlapped (paper)     : %s for 20 batches (%.1f%% saved)\n",
              format_seconds(overlapped.makespan()).c_str(),
              100.0 * (1.0 - overlapped.makespan() / serial.makespan()));
  std::printf("  DMA-read busy fraction : %.0f%% of the overlapped makespan\n",
              100.0 * overlapped.busy_seconds(perf::Resource::kDmaRead) /
                  overlapped.makespan());
  std::printf("Overlap hides the init/write cost but NOT the readback: the "
              "ping-pong hazard (the kernel would overwrite the buffer the\n"
              "host is still reading) serialises kernel and read — exactly "
              "why the modified reduced-reads variant (S2) is the real fix.\n");
  return 0;
}
