// Experiment S2 — the modified kernel IV.A (Section V-C): reducing the
// per-batch host reads gives "an acceleration factor 14 times better than
// the initial kernel version on the same hardware (840 options/s vs 58.4
// options/s)" on the GPU; the paper expects the same order of magnitude on
// the DE4. Prints modelled throughput for both variants on both platforms
// plus measured traffic ratios from functional runs.
#include <cstdio>

#include "common/table.h"
#include "common/units.h"
#include "finance/workload.h"
#include "kernels/kernel_a.h"
#include "ocl/platform.h"
#include "perf/platform_models.h"

int main() {
  using namespace binopt;

  std::printf("=================================================================\n");
  std::printf("S2: kernel IV.A variants — full readback vs reduced reads\n");
  std::printf("=================================================================\n\n");

  const perf::TreeShape shape{1024};
  TextTable table({"Platform", "variant", "read/batch", "batch time",
                   "options/s", "speedup"});
  auto add_pair = [&](const char* name, const perf::KernelAModel& full,
                      const perf::KernelAModel& reduced) {
    const double base = full.options_per_second();
    table.add_row({name, "full readback",
                   format_bytes(full.read_bytes_per_batch()),
                   format_seconds(full.batch().total()),
                   TextTable::num(base, 1), "1.0x"});
    table.add_row({name, "reduced reads",
                   format_bytes(reduced.read_bytes_per_batch()),
                   format_seconds(reduced.batch().total()),
                   TextTable::num(reduced.options_per_second(), 1),
                   TextTable::num(reduced.options_per_second() / base, 1) +
                       "x"});
  };
  add_pair("GPU (GTX660 Ti)", perf::PlatformModels::gpu_kernel_a(shape),
           perf::PlatformModels::gpu_kernel_a(shape, true));
  add_pair("FPGA (DE4)", perf::PlatformModels::fpga_kernel_a(shape),
           perf::PlatformModels::fpga_kernel_a(shape, true));
  std::printf("%s\n", table.render().c_str());
  std::printf("Paper reference: 840 vs 58.4 options/s on the GPU (14x); "
              "the DE4 port was \"ongoing\" with the same order of\n"
              "magnitude expected — the model predicts the FPGA column "
              "above.\n\n");

  // Functional confirmation that the variants price identically while the
  // traffic differs by orders of magnitude.
  auto platform = ocl::Platform::make_reference_platform();
  ocl::Device& device = platform->device_by_kind(ocl::DeviceKind::kGpu);
  const auto batch = finance::make_random_batch(12, 7);
  kernels::KernelAHostProgram full(device, {.steps = 64});
  const auto r_full = full.run(batch);
  kernels::KernelAHostProgram reduced(
      device, {.steps = 64, .reduced_reads = true});
  const auto r_reduced = reduced.run(batch);

  double worst = 0.0;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    worst = std::max(worst, std::abs(r_full.prices[i] - r_reduced.prices[i]));
  }
  std::printf("Functional check (N = 64, %zu options): max price deviation "
              "between variants = %.2e\n", batch.size(), worst);
  std::printf("  device->host bytes: full %s, reduced %s (ratio %.0fx)\n",
              format_bytes(static_cast<double>(r_full.stats.device_to_host_bytes)).c_str(),
              format_bytes(static_cast<double>(r_reduced.stats.device_to_host_bytes)).c_str(),
              static_cast<double>(r_full.stats.device_to_host_bytes) /
                  static_cast<double>(r_reduced.stats.device_to_host_bytes));
  return 0;
}
