// Future work (paper Section VI): "Future work will focus on other
// hardware architectures supporting the OpenCL standard [16][17]" — the
// TI KeyStone C6678 DSP and the ARM Mali-T604. Projects kernel IV.B onto
// both from their datasheet figures, alongside the paper's three measured
// platforms, and extends the energy-efficiency ranking. These two columns
// are predictions (no silicon was measured, in the paper or here).
#include <cstdio>

#include "common/table.h"
#include "common/units.h"
#include "perf/platform_models.h"

int main() {
  using namespace binopt;
  using perf::PlatformModels;

  std::printf("=================================================================\n");
  std::printf("Future work: kernel IV.B across OpenCL targets (Section VI)\n");
  std::printf("=================================================================\n\n");

  const perf::TreeShape shape{1024};
  TextTable table({"platform", "precision", "peak node rate", "sustained",
                   "options/s", "power", "options/J", "status"});

  auto add = [&](const char* name, const char* precision,
                 const perf::KernelBModel& model, double watts,
                 const char* status) {
    table.add_row({name, precision,
                   format_si(model.params().peak_node_rate_per_s, 2),
                   format_si(model.nodes_per_second(), 2),
                   TextTable::num(model.options_per_second(), 0),
                   TextTable::num(watts, 1) + " W",
                   TextTable::num(model.options_per_second() / watts, 1),
                   status});
  };

  add("Stratix IV (DE4)", "double", PlatformModels::fpga_kernel_b(shape),
      PlatformModels::fpga_power_watts_kernel_b(), "measured in paper");
  add("GTX660 Ti", "double", PlatformModels::gpu_kernel_b(shape, true),
      PlatformModels::gpu_power_watts(), "measured in paper");
  add("GTX660 Ti", "single", PlatformModels::gpu_kernel_b(shape, false),
      PlatformModels::gpu_power_watts(), "measured in paper");
  add("KeyStone C6678", "double", PlatformModels::dsp_kernel_b(shape, true),
      PlatformModels::dsp_power_watts(), "PREDICTED [16]");
  add("KeyStone C6678", "single", PlatformModels::dsp_kernel_b(shape, false),
      PlatformModels::dsp_power_watts(), "PREDICTED [16]");
  add("Mali-T604", "double", PlatformModels::mali_kernel_b(shape, true),
      PlatformModels::mali_power_watts(), "PREDICTED [17]");
  add("Mali-T604", "single", PlatformModels::mali_kernel_b(shape, false),
      PlatformModels::mali_power_watts(), "PREDICTED [17]");
  std::printf("%s\n", table.render().c_str());

  const double fpga_opj =
      PlatformModels::fpga_kernel_b(shape).options_per_second() /
      PlatformModels::fpga_power_watts_kernel_b();
  const double mali_opj =
      PlatformModels::mali_kernel_b(shape, true).options_per_second() /
      PlatformModels::mali_power_watts();
  const double dsp_opj =
      PlatformModels::dsp_kernel_b(shape, true).options_per_second() /
      PlatformModels::dsp_power_watts();

  std::printf("Projection highlights (double precision):\n");
  std::printf("  - The C6678 DSP lands near the reference-CPU *throughput* "
              "(%.0f options/s) but at 10 W — ~%.0fx the CPU's energy\n"
              "    efficiency, still ~%.1fx short of the FPGA.\n",
              PlatformModels::dsp_kernel_b(shape, true).options_per_second(),
              dsp_opj / (PlatformModels::cpu_reference_options_per_s(shape, true) /
                         PlatformModels::cpu_power_watts()),
              fpga_opj / dsp_opj);
  std::printf("  - The Mali-T604 cannot approach the 2000 options/s target "
              "(%.0f options/s) but its %.1f W envelope makes it the only\n"
              "    other platform in the FPGA's options/J class (%.0f vs "
              "%.0f options/J) — exactly why the paper flags mobile OpenCL\n"
              "    GPUs as future work for the energy-efficiency question.\n",
              PlatformModels::mali_kernel_b(shape, true).options_per_second(),
              PlatformModels::mali_power_watts(), mali_opj, fpga_opj);
  std::printf("  - Neither alternative meets BOTH Section I constraints "
              "(2000 options/s AND <= 10 W); the derated FPGA remains the\n"
              "    closest feasible point (see bench_power_tuning).\n");
  return 0;
}
