#include <gtest/gtest.h>

#include "common/error.h"
#include "common/table.h"
#include "common/units.h"

namespace binopt {
namespace {

TEST(TextTable, RendersAlignedColumns) {
  TextTable table({"name", "value"});
  table.add_row({"alpha", "1"});
  table.add_row({"b", "12345"});
  const std::string out = table.render();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("12345"), std::string::npos);
  // Header separator row exists.
  EXPECT_NE(out.find("-----"), std::string::npos);
}

TEST(TextTable, RowWidthValidation) {
  TextTable table({"a", "b"});
  EXPECT_THROW(table.add_row({"only-one"}), PreconditionError);
  EXPECT_THROW(table.add_row({"1", "2", "3"}), PreconditionError);
}

TEST(TextTable, CellHelpers) {
  EXPECT_EQ(TextTable::num(3.14159, 2), "3.14");
  EXPECT_EQ(TextTable::integer(42), "42");
  EXPECT_EQ(TextTable::percent(0.66), "66 %");
  EXPECT_EQ(TextTable::percent(0.345, 1), "34.5 %");
}

TEST(TextTable, IndentPrefixesEveryLine) {
  TextTable table({"x"});
  table.add_row({"y"});
  const std::string out = table.render(4);
  EXPECT_EQ(out.rfind("    x", 0), 0u);
}

TEST(TextTable, SeparatorRows) {
  TextTable table({"x"});
  table.add_row({"1"});
  table.add_separator();
  table.add_row({"2"});
  EXPECT_EQ(table.rows(), 3u);
}

TEST(Units, FormatSi) {
  EXPECT_EQ(format_si(1.3e9, 1), "1.3 G");
  EXPECT_EQ(format_si(25.0e6, 0), "25 M");
  EXPECT_EQ(format_si(2400.0, 1), "2.4 k");
  EXPECT_EQ(format_si(42.0, 0), "42 ");
  EXPECT_EQ(format_si(0.001, 0), "1 m");
}

TEST(Units, FormatBytes) {
  EXPECT_EQ(format_bytes(19.0 * kMiB, 1), "19.0 MiB");
  EXPECT_EQ(format_bytes(2.0 * kGiB, 0), "2 GiB");
  EXPECT_EQ(format_bytes(512.0, 0), "512 B");
}

TEST(Units, FormatSeconds) {
  EXPECT_EQ(format_seconds(1.5, 1), "1.5 s");
  EXPECT_EQ(format_seconds(0.0400, 0), "40 ms");
  EXPECT_EQ(format_seconds(2e-6, 0), "2 us");
}

TEST(Units, FormatHertz) {
  EXPECT_EQ(format_hertz(162.62e6, 2), "162.62 MHz");
  EXPECT_EQ(format_hertz(3.0e9, 1), "3.0 GHz");
}

TEST(ErrorMacros, RequireThrowsWithContext) {
  try {
    BINOPT_REQUIRE(1 == 2, "context ", 42);
    FAIL() << "should have thrown";
  } catch (const PreconditionError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("context 42"), std::string::npos);
  }
}

TEST(ErrorMacros, EnsureThrowsInvariantError) {
  EXPECT_THROW(BINOPT_ENSURE(false), InvariantError);
}

TEST(ErrorMacros, PassingChecksAreSilent) {
  EXPECT_NO_THROW(BINOPT_REQUIRE(true));
  EXPECT_NO_THROW(BINOPT_ENSURE(2 + 2 == 4, "math works"));
}

}  // namespace
}  // namespace binopt
