#include "common/statistics.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/error.h"

namespace binopt {
namespace {

TEST(Rmse, ZeroForIdenticalSeries) {
  const std::vector<double> xs{1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(rmse(xs, xs), 0.0);
}

TEST(Rmse, HandComputedValue) {
  const std::vector<double> a{1.0, 2.0, 3.0};
  const std::vector<double> b{2.0, 2.0, 1.0};
  // errors: -1, 0, 2 -> mean square 5/3.
  EXPECT_NEAR(rmse(a, b), std::sqrt(5.0 / 3.0), 1e-15);
}

TEST(Rmse, RejectsSizeMismatchAndEmpty) {
  const std::vector<double> a{1.0};
  const std::vector<double> b{1.0, 2.0};
  EXPECT_THROW((void)rmse(a, b), PreconditionError);
  const std::vector<double> empty;
  EXPECT_THROW((void)rmse(empty, empty), PreconditionError);
}

TEST(MaxAbsError, PicksWorstElement) {
  const std::vector<double> a{1.0, 5.0, -2.0};
  const std::vector<double> b{1.1, 5.0, -4.5};
  EXPECT_NEAR(max_abs_error(a, b), 2.5, 1e-15);
}

TEST(MaxRelError, UsesAbsoluteNearZero) {
  const std::vector<double> a{1e-16, 2.0};
  const std::vector<double> b{0.0, 1.0};
  // First element: |ref| < floor, contributes |diff| = 1e-16.
  EXPECT_NEAR(max_rel_error(a, b), 1.0, 1e-12);
}

TEST(OnlineStats, MatchesBatchSummary) {
  const std::vector<double> xs{3.0, -1.0, 4.0, 1.0, 5.0, -9.0, 2.0};
  OnlineStats s;
  for (double x : xs) s.add(x);
  const Summary batch = summarize(xs);
  EXPECT_EQ(s.count(), xs.size());
  EXPECT_NEAR(s.mean(), batch.mean, 1e-12);
  EXPECT_NEAR(s.stddev(), batch.stddev, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), -9.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
  EXPECT_NEAR(s.sum(), 5.0, 1e-12);
}

TEST(OnlineStats, SampleVarianceHandComputed) {
  // xs = {2,4,4,4,5,5,7,9}: mean 5, sum of squared deviations 32.
  // Sample variance is 32/7; the old population divisor gave 32/8 = 4,
  // understating the stddev benchmarks report for small repetition counts.
  OnlineStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(OnlineStats, TwoValuesUseSampleDivisor) {
  OnlineStats s;
  s.add(1.0);
  s.add(3.0);
  // Deviations ±1 -> m2 = 2; sample variance 2/(2-1) = 2 (population: 1).
  EXPECT_NEAR(s.variance(), 2.0, 1e-12);
}

TEST(OnlineStats, EmptyIsSafe) {
  const OnlineStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(OnlineStats, SingleValue) {
  OnlineStats s;
  s.add(42.0);
  EXPECT_DOUBLE_EQ(s.mean(), 42.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(Geomspace, EndpointsExactAndMonotone) {
  const auto xs = geomspace(1.0, 1000.0, 7);
  ASSERT_EQ(xs.size(), 7u);
  EXPECT_DOUBLE_EQ(xs.front(), 1.0);
  EXPECT_DOUBLE_EQ(xs.back(), 1000.0);
  for (std::size_t i = 1; i < xs.size(); ++i) EXPECT_GT(xs[i], xs[i - 1]);
  // Geometric: constant ratio.
  const double ratio = xs[1] / xs[0];
  for (std::size_t i = 2; i < xs.size(); ++i) {
    EXPECT_NEAR(xs[i] / xs[i - 1], ratio, 1e-9);
  }
}

TEST(Geomspace, RejectsBadInput) {
  EXPECT_THROW((void)geomspace(1.0, 10.0, 1), PreconditionError);
  EXPECT_THROW((void)geomspace(0.0, 10.0, 5), PreconditionError);
  EXPECT_THROW((void)geomspace(-1.0, 10.0, 5), PreconditionError);
}

TEST(Linspace, UniformSpacing) {
  const auto xs = linspace(0.0, 10.0, 11);
  ASSERT_EQ(xs.size(), 11u);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    EXPECT_NEAR(xs[i], static_cast<double>(i), 1e-12);
  }
}

TEST(Lerp, Endpoints) {
  EXPECT_DOUBLE_EQ(lerp(2.0, 6.0, 0.0), 2.0);
  EXPECT_DOUBLE_EQ(lerp(2.0, 6.0, 1.0), 6.0);
  EXPECT_DOUBLE_EQ(lerp(2.0, 6.0, 0.5), 4.0);
}

}  // namespace
}  // namespace binopt
