#include "common/rng.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/statistics.h"

namespace binopt {
namespace {

TEST(SplitMix64, DeterministicForSameSeed) {
  SplitMix64 a(99);
  SplitMix64 b(99);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(SplitMix64, KnownFirstOutput) {
  // Reference value of SplitMix64 with seed 0 (Steele et al.).
  SplitMix64 rng(0);
  EXPECT_EQ(rng(), 0xE220A8397B1DCDAFull);
}

TEST(SplitMix64, Uniform01InRange) {
  SplitMix64 rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.uniform01();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(SplitMix64, UniformMeanIsCentered) {
  SplitMix64 rng(11);
  OnlineStats s;
  for (int i = 0; i < 100000; ++i) s.add(rng.uniform(10.0, 20.0));
  EXPECT_NEAR(s.mean(), 15.0, 0.05);
  EXPECT_GE(s.min(), 10.0);
  EXPECT_LT(s.max(), 20.0);
}

TEST(SplitMix64, BelowIsBoundedAndCoversRange) {
  SplitMix64 rng(13);
  bool seen[10] = {};
  for (int i = 0; i < 10000; ++i) {
    const std::uint64_t v = rng.below(10);
    ASSERT_LT(v, 10u);
    seen[v] = true;
  }
  for (bool hit : seen) EXPECT_TRUE(hit);
}

TEST(SplitMix64, NormalMomentsMatchStandard) {
  SplitMix64 rng(17);
  OnlineStats s;
  for (int i = 0; i < 200000; ++i) s.add(rng.normal());
  EXPECT_NEAR(s.mean(), 0.0, 0.02);
  EXPECT_NEAR(s.stddev(), 1.0, 0.02);
}

}  // namespace
}  // namespace binopt
