// LogHistogram — the fixed log-bucket latency histogram behind the
// service's p50/p95/p99 reporting. The load-bearing properties: bucket
// assignment by bit-width, quantiles that never under-state a tail, and a
// bucket-wise merge that is associative and commutative (the shard-then-
// merge discipline depends on it).
#include "common/histogram.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <random>
#include <vector>

namespace binopt {
namespace {

TEST(LogHistogram, BucketIndexIsBitWidth) {
  EXPECT_EQ(LogHistogram::bucket_index(0), 0u);
  EXPECT_EQ(LogHistogram::bucket_index(1), 1u);
  EXPECT_EQ(LogHistogram::bucket_index(2), 2u);
  EXPECT_EQ(LogHistogram::bucket_index(3), 2u);
  EXPECT_EQ(LogHistogram::bucket_index(4), 3u);
  EXPECT_EQ(LogHistogram::bucket_index(1023), 10u);
  EXPECT_EQ(LogHistogram::bucket_index(1024), 11u);
  EXPECT_EQ(LogHistogram::bucket_index(~std::uint64_t{0}), 64u);
}

TEST(LogHistogram, BucketBoundsBracketTheirValues) {
  for (std::size_t b = 0; b < LogHistogram::kBuckets; ++b) {
    const std::uint64_t upper = LogHistogram::bucket_upper_bound(b);
    EXPECT_EQ(LogHistogram::bucket_index(upper), b) << "bucket " << b;
  }
}

TEST(LogHistogram, CountsSumsAndMean) {
  LogHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0u);
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.p99(), 0u);  // empty histogram reports 0, not garbage

  h.record(10);
  h.record(20);
  h.record(30);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.sum(), 60u);
  EXPECT_DOUBLE_EQ(h.mean(), 20.0);
}

TEST(LogHistogram, QuantilesNeverUnderstateATail) {
  LogHistogram h;
  std::mt19937_64 rng(7);
  std::vector<std::uint64_t> samples;
  for (int i = 0; i < 1000; ++i) {
    // Latency-like spread over several decades.
    const std::uint64_t v = 1 + (rng() % (1u << (rng() % 20)));
    samples.push_back(v);
    h.record(v);
  }
  std::sort(samples.begin(), samples.end());
  // The reported quantile is the bucket's inclusive upper bound, so it is
  // >= the exact sample quantile and within 2x of it (one bucket wide).
  for (const double q : {0.5, 0.95, 0.99}) {
    const std::uint64_t exact =
        samples[static_cast<std::size_t>(q * (samples.size() - 1))];
    const std::uint64_t reported = h.quantile(q);
    EXPECT_GE(reported, exact) << "q=" << q;
    EXPECT_LE(reported, exact * 2) << "q=" << q;
  }
  EXPECT_EQ(h.quantile(1.0),
            LogHistogram::bucket_upper_bound(
                LogHistogram::bucket_index(samples.back())));
}

TEST(LogHistogram, SingleValueQuantilesAreItsBucketBound) {
  LogHistogram h;
  h.record(100);
  const std::uint64_t bound =
      LogHistogram::bucket_upper_bound(LogHistogram::bucket_index(100));
  EXPECT_EQ(h.p50(), bound);
  EXPECT_EQ(h.p95(), bound);
  EXPECT_EQ(h.p99(), bound);
}

// The shard-then-merge contract: merging per-worker shards must yield the
// same histogram regardless of which worker observed which sample and of
// the order shards are folded.
TEST(LogHistogram, MergeIsAssociativeAndCommutative) {
  std::mt19937_64 rng(42);
  std::vector<std::uint64_t> samples(3000);
  for (auto& s : samples) s = rng() % 1000000;

  LogHistogram serial;
  for (const auto s : samples) serial.record(s);

  // Deal the samples across three shards round-robin.
  LogHistogram a, b, c;
  for (std::size_t i = 0; i < samples.size(); ++i) {
    (i % 3 == 0 ? a : i % 3 == 1 ? b : c).record(samples[i]);
  }

  LogHistogram ab_c = a;
  ab_c += b;
  ab_c += c;
  LogHistogram c_ba = c;
  c_ba += b;
  c_ba += a;
  EXPECT_EQ(ab_c, serial);
  EXPECT_EQ(c_ba, serial);
  EXPECT_EQ(ab_c.p99(), serial.p99());
}

TEST(LogHistogram, MinusInvertsMerge) {
  LogHistogram before;
  before.record(5);
  before.record(500);

  LogHistogram after = before;
  after.record(50000);
  after.record(7);

  LogHistogram delta = after.minus(before);
  EXPECT_EQ(delta.count(), 2u);
  EXPECT_EQ(delta.sum(), 50007u);
  LogHistogram expected;
  expected.record(50000);
  expected.record(7);
  EXPECT_EQ(delta, expected);
}

TEST(LogHistogram, ResetRestoresEmptyState) {
  LogHistogram h;
  h.record(123);
  h.reset();
  EXPECT_EQ(h, LogHistogram{});
}

}  // namespace
}  // namespace binopt
