// Unit and property tests of the CRR binomial pricer — the reference
// software every kernel is validated against, so it gets the heaviest
// scrutiny in the suite.
#include "finance/binomial.h"

#include <gtest/gtest.h>

#include <cmath>

#include "finance/black_scholes.h"
#include "finance/option.h"
#include "finance/workload.h"

namespace binopt::finance {
namespace {

OptionSpec atm_call() {
  OptionSpec spec;
  spec.spot = 100.0;
  spec.strike = 100.0;
  spec.rate = 0.05;
  spec.volatility = 0.20;
  spec.maturity = 1.0;
  spec.type = OptionType::kCall;
  spec.style = ExerciseStyle::kAmerican;
  return spec;
}

TEST(LatticeParams, StandardCrrIsArbitrageFree) {
  const LatticeParams lp = LatticeParams::from(atm_call(), 256);
  EXPECT_GT(lp.prob_up, 0.0);
  EXPECT_LT(lp.prob_up, 1.0);
  EXPECT_NEAR(lp.prob_up + lp.prob_down, 1.0, 1e-15);
  EXPECT_NEAR(lp.up * lp.down, 1.0, 1e-15);
  EXPECT_GT(lp.up, 1.0);
  EXPECT_LT(lp.discount, 1.0);
}

TEST(LatticeParams, MartingaleProperty) {
  // E[S(t+1)] = S(t) * e^{(r-q) dt} under the risk-neutral measure.
  const OptionSpec spec = atm_call();
  const LatticeParams lp = LatticeParams::from(spec, 512);
  const double growth = std::exp((spec.rate - spec.dividend) * lp.dt);
  EXPECT_NEAR(lp.prob_up * lp.up + lp.prob_down * lp.down, growth, 1e-14);
}

TEST(LatticeParams, PaperLiteralConventionDiffers) {
  const LatticeParams crr = LatticeParams::from(atm_call(), 64);
  const LatticeParams lit =
      LatticeParams::from(atm_call(), 64, ParamConvention::kPaperLiteral);
  // d = exp(-sigma*dt) vs exp(-sigma*sqrt(dt)): different factors at dt<1.
  EXPECT_NE(crr.down, lit.down);
  EXPECT_NEAR(lit.down, std::exp(-0.20 * (1.0 / 64.0)), 1e-15);
}

TEST(LatticeParams, RejectsDegenerateTree) {
  OptionSpec spec = atm_call();
  spec.rate = 3.0;  // e^{r dt} > u at one step: p > 1
  spec.volatility = 0.01;
  EXPECT_THROW((void)LatticeParams::from(spec, 1), PreconditionError);
}

TEST(BinomialPricer, ConvergesToBlackScholesForEuropeanCall) {
  OptionSpec spec = atm_call();
  spec.style = ExerciseStyle::kEuropean;
  const double analytic = black_scholes_price(spec);
  double prev_err = 1e9;
  for (std::size_t n : {64, 256, 1024}) {
    const double err = std::abs(BinomialPricer(n).price(spec) - analytic);
    EXPECT_LT(err, prev_err) << "no convergence at n = " << n;
    prev_err = err;
  }
  EXPECT_LT(prev_err, 5e-3);
}

TEST(BinomialPricer, ConvergesToBlackScholesForEuropeanPut) {
  OptionSpec spec = atm_call();
  spec.type = OptionType::kPut;
  spec.style = ExerciseStyle::kEuropean;
  const double analytic = black_scholes_price(spec);
  EXPECT_NEAR(BinomialPricer(2048).price(spec), analytic, 2e-3);
}

TEST(BinomialPricer, AmericanCallOnNonDividendStockEqualsEuropean) {
  // Classic no-early-exercise result (Merton): American call = European
  // call when the underlying pays no dividends.
  OptionSpec american = atm_call();
  OptionSpec european = american;
  european.style = ExerciseStyle::kEuropean;
  const BinomialPricer pricer(512);
  EXPECT_NEAR(pricer.price(american), pricer.price(european), 1e-12);
}

TEST(BinomialPricer, AmericanPutCarriesEarlyExercisePremium) {
  OptionSpec spec = atm_call();
  spec.type = OptionType::kPut;
  OptionSpec european = spec;
  european.style = ExerciseStyle::kEuropean;
  const BinomialPricer pricer(512);
  EXPECT_GT(pricer.price(spec), pricer.price(european) + 1e-4);
}

TEST(BinomialPricer, AmericanDominatesEuropeanEverywhere) {
  const BinomialPricer pricer(128);
  for (const OptionSpec& base : make_random_batch(50, 7)) {
    OptionSpec american = base;
    american.style = ExerciseStyle::kAmerican;
    OptionSpec european = base;
    european.style = ExerciseStyle::kEuropean;
    EXPECT_GE(pricer.price(american), pricer.price(european) - 1e-12);
  }
}

TEST(BinomialPricer, PriceAtLeastIntrinsicForAmerican) {
  const BinomialPricer pricer(128);
  for (const OptionSpec& spec : make_random_batch(50, 11)) {
    EXPECT_GE(pricer.price(spec), spec.payoff(spec.spot) - 1e-12);
  }
}

TEST(BinomialPricer, MonotoneInVolatility) {
  const BinomialPricer pricer(256);
  OptionSpec spec = atm_call();
  double prev = 0.0;
  for (double sigma : {0.05, 0.10, 0.20, 0.40, 0.80}) {
    spec.volatility = sigma;
    const double p = pricer.price(spec);
    EXPECT_GT(p, prev);
    prev = p;
  }
}

TEST(BinomialPricer, CallMonotoneDecreasingInStrike) {
  const BinomialPricer pricer(256);
  OptionSpec spec = atm_call();
  double prev = 1e18;
  for (double k : {60.0, 80.0, 100.0, 120.0, 140.0}) {
    spec.strike = k;
    const double p = pricer.price(spec);
    EXPECT_LT(p, prev);
    prev = p;
  }
}

TEST(BinomialPricer, PutCallParityAtEuropeanLimit) {
  OptionSpec call = atm_call();
  call.style = ExerciseStyle::kEuropean;
  OptionSpec put = call;
  put.type = OptionType::kPut;
  const BinomialPricer pricer(2048);
  const double lhs = pricer.price(call) - pricer.price(put);
  const double rhs = call.spot - call.strike * std::exp(-call.rate);
  EXPECT_NEAR(lhs, rhs, 1e-10);  // parity is exact on the lattice
}

TEST(BinomialPricer, DeepInTheMoneyPutExercisesImmediately) {
  OptionSpec spec = atm_call();
  spec.type = OptionType::kPut;
  spec.strike = 300.0;
  spec.volatility = 0.10;
  const double price = BinomialPricer(256).price(spec);
  EXPECT_NEAR(price, spec.strike - spec.spot, 1e-9);
}

TEST(BinomialPricer, OneStepTreeMatchesHandComputation) {
  OptionSpec spec = atm_call();
  spec.style = ExerciseStyle::kEuropean;
  const LatticeParams lp = LatticeParams::from(spec, 1);
  const double up_payoff = std::max(spec.spot * lp.up - spec.strike, 0.0);
  const double dn_payoff = std::max(spec.spot * lp.down - spec.strike, 0.0);
  const double expected =
      lp.discount * (lp.prob_up * up_payoff + lp.prob_down * dn_payoff);
  EXPECT_NEAR(BinomialPricer(1).price(spec), expected, 1e-12);
}

TEST(BinomialPricer, LeafAssetsIterativeMatchesPow) {
  const BinomialPricer pricer(257);  // odd leaf count exercises both ends
  const OptionSpec spec = atm_call();
  const auto iter = pricer.leaf_assets_iterative(spec);
  const auto powd = pricer.leaf_assets_pow<StdMath>(spec);
  ASSERT_EQ(iter.size(), powd.size());
  for (std::size_t k = 0; k < iter.size(); ++k) {
    EXPECT_NEAR(iter[k] / powd[k], 1.0, 1e-12) << "leaf " << k;
  }
}

TEST(BinomialPricer, LeavesAreSortedAndStraddleSpot) {
  const BinomialPricer pricer(64);
  const auto leaves = pricer.leaf_assets_iterative(atm_call());
  ASSERT_EQ(leaves.size(), 65u);
  for (std::size_t k = 1; k < leaves.size(); ++k) {
    EXPECT_GT(leaves[k], leaves[k - 1]);
  }
  EXPECT_LT(leaves.front(), 100.0);
  EXPECT_GT(leaves.back(), 100.0);
  EXPECT_NEAR(leaves[32], 100.0, 1e-9);  // middle leaf recombines to S0
}

TEST(BinomialPricer, PriceFromLeavesMatchesPrice) {
  const BinomialPricer pricer(128);
  const OptionSpec spec = atm_call();
  EXPECT_DOUBLE_EQ(
      pricer.price_from_leaves(spec, pricer.leaf_assets_iterative(spec)),
      pricer.price(spec));
}

TEST(BinomialPricer, PriceFromLeavesValidatesLeafCount) {
  const BinomialPricer pricer(16);
  EXPECT_THROW(
      (void)pricer.price_from_leaves(atm_call(), std::vector<double>(5, 1.0)),
      PreconditionError);
}

TEST(BinomialPricer, BatchMatchesScalarPricing) {
  const auto batch = make_random_batch(20, 3);
  const BinomialPricer pricer(64);
  const auto prices = pricer.price_batch(batch);
  ASSERT_EQ(prices.size(), batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    EXPECT_DOUBLE_EQ(prices[i], pricer.price(batch[i]));
  }
}

// --- Figure 1 semantics: the materialised tree -----------------------------

TEST(BinomialTree, ShapeIsRecombining) {
  const BinomialTree tree = BinomialPricer(8).build_tree(atm_call());
  EXPECT_EQ(tree.steps, 8u);
  ASSERT_EQ(tree.asset.size(), 9u);
  for (std::size_t t = 0; t <= 8; ++t) {
    EXPECT_EQ(tree.asset[t].size(), t + 1) << "level " << t;
  }
}

TEST(BinomialTree, UpThenDownRecombines) {
  const BinomialTree tree = BinomialPricer(4).build_tree(atm_call());
  // One up + one down returns to the spot (Figure 1's recombination).
  EXPECT_NEAR(tree.asset[2][1], 100.0, 1e-12);
  EXPECT_NEAR(tree.asset[0][0], 100.0, 1e-12);
}

TEST(BinomialTree, RootMatchesRollingArrayPricer) {
  const BinomialPricer pricer(64);
  for (const OptionSpec& spec : make_random_batch(10, 5)) {
    EXPECT_NEAR(pricer.build_tree(spec).root_value(), pricer.price(spec),
                1e-12);
  }
}

TEST(BinomialTree, LeafValuesAreEuropeanPayoffs) {
  const OptionSpec spec = atm_call();
  const BinomialTree tree = BinomialPricer(16).build_tree(spec);
  for (std::size_t k = 0; k <= 16; ++k) {
    EXPECT_DOUBLE_EQ(tree.value[16][k], spec.payoff(tree.asset[16][k]));
  }
}

TEST(BinomialTree, AmericanPutHasContiguousExerciseRegionAtExpiryLevel) {
  OptionSpec spec = atm_call();
  spec.type = OptionType::kPut;
  const BinomialTree tree = BinomialPricer(64).build_tree(spec);
  // For a put, exercise happens at LOW asset prices: once we stop seeing
  // exercise while scanning k upward, it never resumes.
  for (std::size_t t = 0; t < 64; ++t) {
    bool seen_no_exercise = false;
    for (std::size_t k = 0; k <= t; ++k) {
      if (!tree.exercised[t][k]) seen_no_exercise = true;
      else EXPECT_FALSE(seen_no_exercise)
          << "non-contiguous exercise at t=" << t << " k=" << k;
    }
  }
}

TEST(BinomialPricer, ConvenienceFunctionAgrees) {
  EXPECT_DOUBLE_EQ(binomial_price(atm_call(), 128),
                   BinomialPricer(128).price(atm_call()));
}

TEST(BinomialPricer, RejectsZeroSteps) {
  EXPECT_THROW(BinomialPricer(0), PreconditionError);
}

// Parameterised convergence sweep: lattice error shrinks ~ O(1/N) for
// European options across moneyness.
class ConvergenceSweep : public ::testing::TestWithParam<double> {};

TEST_P(ConvergenceSweep, LatticeErrorShrinksWithSteps) {
  OptionSpec spec = atm_call();
  spec.style = ExerciseStyle::kEuropean;
  spec.strike = GetParam();
  const double analytic = black_scholes_price(spec);
  // CRR prices oscillate between adjacent step counts for off-ATM
  // strikes; averaging N and N+1 damps the oscillation so the underlying
  // O(1/N) convergence is visible.
  auto smoothed_error = [&](std::size_t n) {
    const double p =
        0.5 * (BinomialPricer(n).price(spec) + BinomialPricer(n + 1).price(spec));
    return std::abs(p - analytic);
  };
  const double err_small = smoothed_error(128);
  const double err_large = smoothed_error(1024);
  EXPECT_LT(err_large, err_small + 1e-6);
  EXPECT_LT(err_large, 2e-2);
}

INSTANTIATE_TEST_SUITE_P(Moneyness, ConvergenceSweep,
                         ::testing::Values(70.0, 85.0, 100.0, 115.0, 130.0));

}  // namespace
}  // namespace binopt::finance
