#include "finance/option.h"

#include <gtest/gtest.h>

namespace binopt::finance {
namespace {

TEST(OptionSpec, DefaultIsValid) {
  OptionSpec spec;
  EXPECT_NO_THROW(spec.validate());
}

TEST(OptionSpec, PayoffCall) {
  OptionSpec spec;
  spec.strike = 100.0;
  spec.type = OptionType::kCall;
  EXPECT_DOUBLE_EQ(spec.payoff(120.0), 20.0);
  EXPECT_DOUBLE_EQ(spec.payoff(80.0), 0.0);
  EXPECT_DOUBLE_EQ(spec.payoff(100.0), 0.0);
}

TEST(OptionSpec, PayoffPut) {
  OptionSpec spec;
  spec.strike = 100.0;
  spec.type = OptionType::kPut;
  EXPECT_DOUBLE_EQ(spec.payoff(80.0), 20.0);
  EXPECT_DOUBLE_EQ(spec.payoff(120.0), 0.0);
}

TEST(OptionSpec, Moneyness) {
  OptionSpec spec;
  spec.spot = 110.0;
  spec.strike = 100.0;
  EXPECT_DOUBLE_EQ(spec.moneyness(), 1.1);
}

TEST(OptionSpec, ValidationRejectsEachBadField) {
  auto check_throws = [](auto mutate) {
    OptionSpec spec;
    mutate(spec);
    EXPECT_THROW(spec.validate(), PreconditionError);
  };
  check_throws([](OptionSpec& s) { s.spot = 0.0; });
  check_throws([](OptionSpec& s) { s.spot = -10.0; });
  check_throws([](OptionSpec& s) { s.strike = 0.0; });
  check_throws([](OptionSpec& s) { s.volatility = 0.0; });
  check_throws([](OptionSpec& s) { s.volatility = -0.2; });
  check_throws([](OptionSpec& s) { s.maturity = 0.0; });
  check_throws([](OptionSpec& s) { s.dividend = -0.01; });
  check_throws([](OptionSpec& s) { s.spot = std::numeric_limits<double>::quiet_NaN(); });
  check_throws([](OptionSpec& s) { s.rate = std::numeric_limits<double>::infinity(); });
}

TEST(OptionSpec, NegativeRatesAreAllowed) {
  OptionSpec spec;
  spec.rate = -0.01;  // post-2008 reality
  EXPECT_NO_THROW(spec.validate());
}

TEST(OptionSpec, EqualityComparesEconomicFields) {
  OptionSpec a;
  OptionSpec b = a;
  EXPECT_TRUE(a == b);
  b.strike += 1.0;
  EXPECT_FALSE(a == b);
}

TEST(OptionEnums, ToStringRoundtrip) {
  EXPECT_EQ(to_string(OptionType::kCall), "call");
  EXPECT_EQ(to_string(OptionType::kPut), "put");
  EXPECT_EQ(to_string(ExerciseStyle::kAmerican), "american");
  EXPECT_EQ(to_string(ExerciseStyle::kEuropean), "european");
}

}  // namespace
}  // namespace binopt::finance
