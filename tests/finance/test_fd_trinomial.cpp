// Cross-method agreement tests: the finite-difference and trinomial
// pricers must agree with the binomial reference — three independent
// numerical schemes converging to the same American option value is a
// strong correctness argument for all of them.
#include <gtest/gtest.h>

#include <cmath>

#include "finance/binomial.h"
#include "finance/black_scholes.h"
#include "finance/finite_difference.h"
#include "finance/trinomial.h"

namespace binopt::finance {
namespace {

OptionSpec base(OptionType type, ExerciseStyle style) {
  OptionSpec spec;
  spec.spot = 100.0;
  spec.strike = 100.0;
  spec.rate = 0.05;
  spec.volatility = 0.20;
  spec.maturity = 1.0;
  spec.type = type;
  spec.style = style;
  return spec;
}

// --- Finite differences -----------------------------------------------------

TEST(FiniteDifference, EuropeanCallMatchesBlackScholes) {
  const OptionSpec spec = base(OptionType::kCall, ExerciseStyle::kEuropean);
  const FdResult r = finite_difference_price(
      spec, {.price_nodes = 401, .time_steps = 400});
  EXPECT_NEAR(r.price, black_scholes_price(spec), 2e-2);
}

TEST(FiniteDifference, EuropeanPutMatchesBlackScholes) {
  const OptionSpec spec = base(OptionType::kPut, ExerciseStyle::kEuropean);
  const FdResult r = finite_difference_price(
      spec, {.price_nodes = 401, .time_steps = 400});
  EXPECT_NEAR(r.price, black_scholes_price(spec), 2e-2);
}

TEST(FiniteDifference, AmericanPutMatchesDeepBinomial) {
  const OptionSpec spec = base(OptionType::kPut, ExerciseStyle::kAmerican);
  const FdResult r = finite_difference_price(
      spec, {.price_nodes = 401, .time_steps = 400});
  EXPECT_NEAR(r.price, BinomialPricer(4096).price(spec), 5e-3);
  EXPECT_GT(r.psor_iterations, 0u);
}

TEST(FiniteDifference, AmericanPremiumNonNegative) {
  const OptionSpec amer = base(OptionType::kPut, ExerciseStyle::kAmerican);
  const OptionSpec euro = base(OptionType::kPut, ExerciseStyle::kEuropean);
  const FdConfig config{.price_nodes = 201, .time_steps = 100};
  EXPECT_GE(finite_difference_price(amer, config).price,
            finite_difference_price(euro, config).price - 1e-9);
}

TEST(FiniteDifference, DeltaIsSensible) {
  const OptionSpec call = base(OptionType::kCall, ExerciseStyle::kEuropean);
  const FdResult r = finite_difference_price(call);
  const double bs_delta = norm_cdf(black_scholes_d1(call));
  EXPECT_NEAR(r.delta, bs_delta, 2e-2);
}

TEST(FiniteDifference, AmericanValueNeverBelowObstacle) {
  // Deep ITM put: the PSOR projection must pin the value at intrinsic.
  OptionSpec spec = base(OptionType::kPut, ExerciseStyle::kAmerican);
  spec.strike = 180.0;
  const FdResult r = finite_difference_price(spec);
  EXPECT_GE(r.price, spec.strike - spec.spot - 1e-9);
}

TEST(FiniteDifference, RefinementConverges) {
  const OptionSpec spec = base(OptionType::kPut, ExerciseStyle::kAmerican);
  const double anchor = BinomialPricer(4096).price(spec);
  const double coarse = std::abs(
      finite_difference_price(spec, {.price_nodes = 101, .time_steps = 50})
          .price -
      anchor);
  const double fine = std::abs(
      finite_difference_price(spec, {.price_nodes = 401, .time_steps = 400})
          .price -
      anchor);
  EXPECT_LT(fine, coarse);
}

TEST(FiniteDifference, ValidatesConfig) {
  const OptionSpec spec = base(OptionType::kPut, ExerciseStyle::kAmerican);
  EXPECT_THROW((void)finite_difference_price(spec, {.price_nodes = 200}),
               PreconditionError);  // even grid
  EXPECT_THROW((void)finite_difference_price(spec, {.psor_omega = 2.5}),
               PreconditionError);
}

// --- Trinomial ---------------------------------------------------------------

TEST(Trinomial, EuropeanCallMatchesBlackScholes) {
  const OptionSpec spec = base(OptionType::kCall, ExerciseStyle::kEuropean);
  EXPECT_NEAR(trinomial_price(spec, 1024).price, black_scholes_price(spec),
              5e-3);
}

TEST(Trinomial, AmericanPutMatchesDeepBinomial) {
  const OptionSpec spec = base(OptionType::kPut, ExerciseStyle::kAmerican);
  EXPECT_NEAR(trinomial_price(spec, 1024).price,
              BinomialPricer(4096).price(spec), 5e-3);
}

TEST(Trinomial, ConvergesFasterPerStepThanBinomial) {
  const OptionSpec spec = base(OptionType::kCall, ExerciseStyle::kEuropean);
  const double analytic = black_scholes_price(spec);
  const double tri_err =
      std::abs(trinomial_price(spec, 256).price - analytic);
  const double bin_err =
      std::abs(BinomialPricer(256).price(spec) - analytic);
  EXPECT_LT(tri_err, bin_err * 1.5);  // at least comparable per step
}

TEST(Trinomial, NodeCountIsQuadratic) {
  const OptionSpec spec = base(OptionType::kCall, ExerciseStyle::kAmerican);
  const TrinomialResult r = trinomial_price(spec, 10);
  // Sum of layer widths: (2*10+1) + sum_{t=0..9} (2t+1) = 21 + 100.
  EXPECT_EQ(r.nodes, 121u);
}

TEST(Trinomial, RejectsDegenerateProbabilities) {
  OptionSpec spec = base(OptionType::kCall, ExerciseStyle::kAmerican);
  spec.rate = 2.5;
  spec.volatility = 0.05;
  EXPECT_THROW((void)trinomial_price(spec, 2), PreconditionError);
  EXPECT_THROW((void)trinomial_price(spec, 64, 1.0), PreconditionError);
}

TEST(Trinomial, AmericanDominatesEuropean) {
  const OptionSpec amer = base(OptionType::kPut, ExerciseStyle::kAmerican);
  const OptionSpec euro = base(OptionType::kPut, ExerciseStyle::kEuropean);
  EXPECT_GT(trinomial_price(amer, 512).price,
            trinomial_price(euro, 512).price);
}

// --- Four-way agreement -------------------------------------------------------

TEST(MethodAgreement, AllSchemesWithinTolerance) {
  const OptionSpec spec = base(OptionType::kPut, ExerciseStyle::kAmerican);
  const double binomial = BinomialPricer(2048).price(spec);
  const double trinomial = trinomial_price(spec, 1024).price;
  const double fd =
      finite_difference_price(spec, {.price_nodes = 401, .time_steps = 400})
          .price;
  EXPECT_NEAR(trinomial, binomial, 5e-3);
  EXPECT_NEAR(fd, binomial, 5e-3);
}

}  // namespace
}  // namespace binopt::finance
