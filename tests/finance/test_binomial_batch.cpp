// BatchPricer parity: the vectorized (AVX2) batch front-end must produce
// prices BIT-IDENTICAL to the scalar BinomialPricer for the double path,
// across option types, exercise styles, batch tails (n % 4 != 0), and
// dispatch modes. Also covers the runtime SIMD dispatch knobs
// (set_simd_override, BINOPT_SIMD env).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "finance/binomial.h"
#include "finance/binomial_batch.h"
#include "finance/workload.h"

namespace binopt::finance {
namespace {

constexpr std::size_t kSteps = 64;

/// Restores the automatic dispatch mode when a test returns.
struct OverrideGuard {
  ~OverrideGuard() { BatchPricer::set_simd_override(-1); }
};

std::vector<OptionSpec> mixed_batch(std::size_t count) {
  // Calls and puts, American and European, varied moneyness/vol/rate.
  WorkloadConfig config;
  std::vector<OptionSpec> specs = make_random_batch(count, /*seed=*/1234, config);
  for (std::size_t i = 0; i < specs.size(); ++i) {
    specs[i].type = (i % 2 == 0) ? OptionType::kCall : OptionType::kPut;
    specs[i].style =
        (i % 3 == 0) ? ExerciseStyle::kEuropean : ExerciseStyle::kAmerican;
  }
  return specs;
}

void expect_bitwise_equal(const std::vector<double>& got,
                          const std::vector<double>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    std::uint64_t got_bits = 0;
    std::uint64_t want_bits = 0;
    std::memcpy(&got_bits, &got[i], sizeof got_bits);
    std::memcpy(&want_bits, &want[i], sizeof want_bits);
    ASSERT_EQ(got_bits, want_bits)
        << "spec " << i << ": batch=" << got[i] << " scalar=" << want[i];
  }
}

std::vector<double> scalar_reference(const std::vector<OptionSpec>& specs) {
  const BinomialPricer pricer(kSteps);
  std::vector<double> out;
  out.reserve(specs.size());
  for (const OptionSpec& spec : specs) out.push_back(pricer.price(spec));
  return out;
}

TEST(BatchPricer, ScalarPathMatchesBinomialPricerBitwise) {
  OverrideGuard guard;
  BatchPricer::set_simd_override(0);  // force the scalar fallback
  const auto specs = mixed_batch(97);  // tail of 1 past the 4-lane groups
  const auto want = scalar_reference(specs);
  BatchPricer batch(kSteps);
  std::vector<double> got(specs.size());
  batch.price_into(specs.data(), specs.size(), got.data());
  expect_bitwise_equal(got, want);
}

TEST(BatchPricer, Avx2PathMatchesBinomialPricerBitwise) {
  if (!BatchPricer::simd_available()) {
    GTEST_SKIP() << "host CPU has no AVX2";
  }
  OverrideGuard guard;
  BatchPricer::set_simd_override(1);  // force the vector kernel
  // 203 = 50 full 4-lane groups + a 3-option tail.
  const auto specs = mixed_batch(203);
  const auto want = scalar_reference(specs);
  BatchPricer batch(kSteps);
  std::vector<double> got(specs.size());
  batch.price_into(specs.data(), specs.size(), got.data());
  expect_bitwise_equal(got, want);
}

TEST(BatchPricer, Avx2MatchesScalarOnCuratedEdgeCases) {
  if (!BatchPricer::simd_available()) {
    GTEST_SKIP() << "host CPU has no AVX2";
  }
  OverrideGuard guard;
  const auto specs = make_smoke_batch();  // deep ITM/OTM, ATM, maturities
  BatchPricer batch(kSteps);
  std::vector<double> vec(specs.size());
  std::vector<double> sca(specs.size());
  BatchPricer::set_simd_override(1);
  batch.price_into(specs.data(), specs.size(), vec.data());
  BatchPricer::set_simd_override(0);
  batch.price_into(specs.data(), specs.size(), sca.data());
  expect_bitwise_equal(vec, sca);
}

TEST(BatchPricer, CurveBatchMatchesPriceBatchBitwise) {
  // Whatever dispatch mode the host resolves to, the paper's canonical
  // 2000-option volatility-curve batch must reproduce price_batch exactly.
  const auto specs = make_curve_batch(500);
  const BinomialPricer reference(kSteps);
  const auto want = reference.price_batch(specs);
  BatchPricer batch(kSteps);
  std::vector<double> got(specs.size());
  batch.price_into(specs.data(), specs.size(), got.data());
  expect_bitwise_equal(got, want);
}

TEST(BatchPricer, OverrideHookControlsDispatch) {
  OverrideGuard guard;
  BatchPricer::set_simd_override(0);
  EXPECT_FALSE(BatchPricer::simd_enabled());
  if (BatchPricer::simd_available()) {
    BatchPricer::set_simd_override(1);
    EXPECT_TRUE(BatchPricer::simd_enabled());
  }
  BatchPricer::set_simd_override(-1);
  // Automatic mode: enabled iff the CPU supports it (no env override in
  // the test environment is assumed for the positive case).
  if (!BatchPricer::simd_available()) {
    EXPECT_FALSE(BatchPricer::simd_enabled());
  }
}

TEST(BatchPricer, EnvKnobDisablesSimd) {
  OverrideGuard guard;
  BatchPricer::set_simd_override(-1);
  ASSERT_EQ(setenv("BINOPT_SIMD", "off", /*overwrite=*/1), 0);
  EXPECT_FALSE(BatchPricer::simd_enabled());
  ASSERT_EQ(setenv("BINOPT_SIMD", "scalar", 1), 0);
  EXPECT_FALSE(BatchPricer::simd_enabled());
  ASSERT_EQ(unsetenv("BINOPT_SIMD"), 0);
  // And pricing still works (scalar fallback) with the knob set.
  ASSERT_EQ(setenv("BINOPT_SIMD", "off", 1), 0);
  const auto specs = mixed_batch(9);
  const auto want = scalar_reference(specs);
  BatchPricer batch(kSteps);
  std::vector<double> got(specs.size());
  batch.price_into(specs.data(), specs.size(), got.data());
  expect_bitwise_equal(got, want);
  ASSERT_EQ(unsetenv("BINOPT_SIMD"), 0);
}

TEST(BatchPricer, HandlesEmptyAndSingleOptionBatches) {
  BatchPricer batch(kSteps);
  batch.price_into(nullptr, 0, nullptr);  // no-op, must not crash
  const auto specs = mixed_batch(1);
  double price = 0.0;
  batch.price_into(specs.data(), 1, &price);
  const BinomialPricer reference(kSteps);
  EXPECT_EQ(price, reference.price(specs[0]));
}

TEST(BatchPricer, ReusedPricerStaysBitExactAcrossCalls) {
  // Scratch reuse across calls of different sizes must not leak state
  // between batches.
  BatchPricer batch(kSteps);
  const auto first = mixed_batch(16);
  const auto second = mixed_batch(7);
  std::vector<double> out1(first.size());
  std::vector<double> out2(second.size());
  batch.price_into(first.data(), first.size(), out1.data());
  batch.price_into(second.data(), second.size(), out2.data());
  expect_bitwise_equal(out1, scalar_reference(first));
  expect_bitwise_equal(out2, scalar_reference(second));
}

}  // namespace
}  // namespace binopt::finance
