#include "finance/black_scholes.h"

#include <gtest/gtest.h>

#include <cmath>

namespace binopt::finance {
namespace {

OptionSpec base_spec() {
  OptionSpec spec;
  spec.spot = 100.0;
  spec.strike = 100.0;
  spec.rate = 0.05;
  spec.volatility = 0.20;
  spec.maturity = 1.0;
  spec.type = OptionType::kCall;
  spec.style = ExerciseStyle::kEuropean;
  return spec;
}

TEST(NormCdf, MatchesKnownValues) {
  EXPECT_NEAR(norm_cdf(0.0), 0.5, 1e-15);
  EXPECT_NEAR(norm_cdf(1.0), 0.8413447460685429, 1e-12);
  EXPECT_NEAR(norm_cdf(-1.0), 1.0 - 0.8413447460685429, 1e-12);
  EXPECT_NEAR(norm_cdf(5.0), 1.0, 1e-6);
}

TEST(NormPdf, SymmetricAndNormalizedAtZero) {
  EXPECT_NEAR(norm_pdf(0.0), 0.3989422804014327, 1e-14);
  EXPECT_DOUBLE_EQ(norm_pdf(1.3), norm_pdf(-1.3));
}

TEST(BlackScholes, HullTextbookCall) {
  // Hull, Options Futures & Other Derivatives: S=42, K=40, r=10%,
  // sigma=20%, T=0.5 -> call = 4.759, put = 0.808.
  OptionSpec spec = base_spec();
  spec.spot = 42.0;
  spec.strike = 40.0;
  spec.rate = 0.10;
  spec.volatility = 0.20;
  spec.maturity = 0.5;
  EXPECT_NEAR(black_scholes_price(spec), 4.759, 1e-3);
  spec.type = OptionType::kPut;
  EXPECT_NEAR(black_scholes_price(spec), 0.808, 1e-3);
}

TEST(BlackScholes, PutCallParity) {
  OptionSpec call = base_spec();
  OptionSpec put = call;
  put.type = OptionType::kPut;
  const double lhs = black_scholes_price(call) - black_scholes_price(put);
  const double rhs = call.spot - call.strike * std::exp(-call.rate);
  EXPECT_NEAR(lhs, rhs, 1e-12);
}

TEST(BlackScholes, CallBoundedByForwardAndIntrinsic) {
  OptionSpec spec = base_spec();
  const double price = black_scholes_price(spec);
  EXPECT_GT(price, 0.0);
  EXPECT_LT(price, spec.spot);
  EXPECT_GE(price, spec.spot - spec.strike * std::exp(-spec.rate) - 1e-12);
}

TEST(BlackScholes, VegaMatchesFiniteDifference) {
  OptionSpec spec = base_spec();
  const double analytic = black_scholes_vega(spec);
  const double h = 1e-5;
  OptionSpec up = spec;
  up.volatility += h;
  OptionSpec dn = spec;
  dn.volatility -= h;
  const double numeric =
      (black_scholes_price(up) - black_scholes_price(dn)) / (2.0 * h);
  EXPECT_NEAR(analytic, numeric, 1e-6);
}

TEST(BlackScholes, VegaPositiveAcrossMoneyness) {
  OptionSpec spec = base_spec();
  for (double k : {50.0, 80.0, 100.0, 120.0, 200.0}) {
    spec.strike = k;
    EXPECT_GT(black_scholes_vega(spec), 0.0) << "strike " << k;
  }
}

TEST(BlackScholes, DividendYieldLowersCall) {
  OptionSpec no_div = base_spec();
  OptionSpec with_div = no_div;
  with_div.dividend = 0.03;
  EXPECT_LT(black_scholes_price(with_div), black_scholes_price(no_div));
}

TEST(BlackScholes, DeepItmCallApproachesDiscountedForwardPayoff) {
  OptionSpec spec = base_spec();
  spec.strike = 1.0;
  const double expected = spec.spot - spec.strike * std::exp(-spec.rate);
  EXPECT_NEAR(black_scholes_price(spec), expected, 1e-9);
}

TEST(BlackScholes, RejectsInvalidSpec) {
  OptionSpec spec = base_spec();
  spec.volatility = -0.1;
  EXPECT_THROW((void)black_scholes_price(spec), PreconditionError);
  spec = base_spec();
  spec.spot = 0.0;
  EXPECT_THROW((void)black_scholes_price(spec), PreconditionError);
}

}  // namespace
}  // namespace binopt::finance
