#include "finance/implied_vol.h"

#include <gtest/gtest.h>

#include "finance/binomial.h"
#include "finance/black_scholes.h"

namespace binopt::finance {
namespace {

OptionSpec euro_call() {
  OptionSpec spec;
  spec.spot = 100.0;
  spec.strike = 105.0;
  spec.rate = 0.03;
  spec.volatility = 0.25;  // the "true" vol used to make quotes
  spec.maturity = 0.75;
  spec.type = OptionType::kCall;
  spec.style = ExerciseStyle::kEuropean;
  return spec;
}

TEST(ImpliedVol, RoundTripsBlackScholes) {
  const OptionSpec spec = euro_call();
  const double quote = black_scholes_price(spec);
  const ImpliedVolResult r = implied_volatility_black_scholes(spec, quote);
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.sigma, spec.volatility, 1e-6);
  EXPECT_LT(std::abs(r.residual), 1e-7);
}

TEST(ImpliedVol, RoundTripsBinomialAmericanPut) {
  OptionSpec spec = euro_call();
  spec.type = OptionType::kPut;
  spec.style = ExerciseStyle::kAmerican;
  const BinomialPricer pricer(256);
  const double quote = pricer.price(spec);
  const auto price_fn = [&](const OptionSpec& s) { return pricer.price(s); };
  ImpliedVolConfig config;
  // CRR lattices need the lower bracket above the arbitrage-free floor.
  config.sigma_lo = LatticeParams::min_volatility(spec, 256);
  const ImpliedVolResult r = implied_volatility(spec, quote, price_fn, config);
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.sigma, spec.volatility, 1e-5);
}

TEST(ImpliedVol, MinVolatilityFloorIsExactlyTheLatticeBoundary) {
  OptionSpec spec = euro_call();
  const std::size_t steps = 64;
  const double floor = LatticeParams::min_volatility(spec, steps);
  spec.volatility = floor;
  EXPECT_NO_THROW((void)LatticeParams::from(spec, steps));
  spec.volatility = floor / 1.10;
  EXPECT_THROW((void)LatticeParams::from(spec, steps), PreconditionError);
}

TEST(ImpliedVol, RoundTripsAcrossVolLevels) {
  for (double sigma : {0.05, 0.15, 0.40, 0.90, 1.80}) {
    OptionSpec spec = euro_call();
    spec.volatility = sigma;
    const double quote = black_scholes_price(spec);
    const ImpliedVolResult r = implied_volatility_black_scholes(spec, quote);
    EXPECT_TRUE(r.converged) << "sigma " << sigma;
    EXPECT_NEAR(r.sigma, sigma, 1e-5) << "sigma " << sigma;
  }
}

TEST(ImpliedVol, RejectsPriceBelowAttainableRange) {
  // With the bracket floored at sigma = 0.05 an ATM-forward call cannot
  // be nearly free: the quote sits below the attainable price range.
  const OptionSpec spec = euro_call();
  ImpliedVolConfig config;
  config.sigma_lo = 0.05;
  EXPECT_THROW((void)implied_volatility_black_scholes(spec, 1e-9, config),
               PreconditionError);
}

TEST(ImpliedVol, RejectsPriceAboveAttainableRange) {
  const OptionSpec spec = euro_call();
  EXPECT_THROW(
      (void)implied_volatility_black_scholes(spec, /*market_price=*/99.0),
      PreconditionError);
}

TEST(ImpliedVol, RespectsIterationBudget) {
  ImpliedVolConfig config;
  config.max_iterations = 5;
  config.price_tol = 1e-14;  // unreachable in 5 bisections
  config.sigma_tol = 0.0;
  const OptionSpec spec = euro_call();
  const double quote = black_scholes_price(spec);
  const ImpliedVolResult r =
      implied_volatility_black_scholes(spec, quote, config);
  EXPECT_LE(r.iterations, 5u);
}

TEST(ImpliedVol, ConvergesAtBracketEndpoint) {
  ImpliedVolConfig config;
  config.sigma_lo = 0.25;  // quote generated exactly at the lower bracket
  const OptionSpec spec = euro_call();
  OptionSpec at_lo = spec;
  at_lo.volatility = config.sigma_lo;
  const double quote = black_scholes_price(at_lo);
  const ImpliedVolResult r =
      implied_volatility_black_scholes(spec, quote, config);
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.sigma, 0.25, 1e-6);
}

TEST(ImpliedVol, ValidatesInputs) {
  const OptionSpec spec = euro_call();
  const auto fn = [](const OptionSpec& s) { return black_scholes_price(s); };
  EXPECT_THROW((void)implied_volatility(spec, -1.0, fn), PreconditionError);
  ImpliedVolConfig bad;
  bad.sigma_lo = 0.5;
  bad.sigma_hi = 0.1;
  EXPECT_THROW((void)implied_volatility(spec, 5.0, fn, bad),
               PreconditionError);
}

}  // namespace
}  // namespace binopt::finance
