#include "finance/monte_carlo.h"

#include <gtest/gtest.h>

#include <cmath>

#include "finance/binomial.h"
#include "finance/black_scholes.h"

namespace binopt::finance {
namespace {

OptionSpec euro_call() {
  OptionSpec spec;
  spec.spot = 100.0;
  spec.strike = 100.0;
  spec.rate = 0.05;
  spec.volatility = 0.20;
  spec.maturity = 1.0;
  spec.type = OptionType::kCall;
  spec.style = ExerciseStyle::kEuropean;
  return spec;
}

TEST(MonteCarloEuropean, ConvergesToBlackScholesWithinErrorBars) {
  const OptionSpec spec = euro_call();
  McConfig config;
  config.paths = 200000;
  const McResult r = monte_carlo_european(spec, config);
  const double analytic = black_scholes_price(spec);
  EXPECT_NEAR(r.price, analytic, 5.0 * r.std_error);
  EXPECT_GT(r.std_error, 0.0);
  EXPECT_LT(r.std_error, 0.1);
}

TEST(MonteCarloEuropean, Deterministic) {
  const OptionSpec spec = euro_call();
  const McResult a = monte_carlo_european(spec);
  const McResult b = monte_carlo_european(spec);
  EXPECT_DOUBLE_EQ(a.price, b.price);
}

TEST(MonteCarloEuropean, AntitheticReducesVariance) {
  const OptionSpec spec = euro_call();
  McConfig plain;
  plain.paths = 50000;
  plain.antithetic = false;
  McConfig anti = plain;
  anti.antithetic = true;
  EXPECT_LT(monte_carlo_european(spec, anti).std_error,
            monte_carlo_european(spec, plain).std_error);
}

TEST(MonteCarloEuropean, StdErrorShrinksAsSqrtPaths) {
  const OptionSpec spec = euro_call();
  McConfig small;
  small.paths = 10000;
  McConfig big;
  big.paths = 160000;  // 16x paths -> ~4x smaller SE
  const double se_small = monte_carlo_european(spec, small).std_error;
  const double se_big = monte_carlo_european(spec, big).std_error;
  EXPECT_NEAR(se_small / se_big, 4.0, 1.2);
}

TEST(MonteCarloAmerican, LsmPutMatchesBinomial) {
  OptionSpec put = euro_call();
  put.type = OptionType::kPut;
  put.style = ExerciseStyle::kAmerican;
  McConfig config;
  config.paths = 60000;
  config.time_steps = 64;
  const McResult r = monte_carlo_american(put, config);
  const double lattice = BinomialPricer(2048).price(put);
  // LSM carries a small low bias; allow error bars + 1%.
  EXPECT_NEAR(r.price, lattice, 5.0 * r.std_error + 0.01 * lattice);
}

TEST(MonteCarloAmerican, AtLeastEuropeanValue) {
  OptionSpec put = euro_call();
  put.type = OptionType::kPut;
  put.style = ExerciseStyle::kAmerican;
  OptionSpec euro_put = put;
  euro_put.style = ExerciseStyle::kEuropean;
  McConfig config;
  config.paths = 40000;
  const double american = monte_carlo_american(put, config).price;
  const double european = black_scholes_price(euro_put);
  EXPECT_GT(american, european - 0.05);
}

TEST(MonteCarloAmerican, DeepItmPutReturnsNearIntrinsic) {
  OptionSpec put = euro_call();
  put.type = OptionType::kPut;
  put.style = ExerciseStyle::kAmerican;
  put.strike = 250.0;
  put.volatility = 0.10;
  McConfig config;
  config.paths = 20000;
  const McResult r = monte_carlo_american(put, config);
  EXPECT_NEAR(r.price, 150.0, 1.0);  // immediate exercise dominates
}

TEST(MonteCarloAmerican, EuropeanStyleFallsBackToTerminalSampler) {
  const OptionSpec spec = euro_call();
  const McResult direct = monte_carlo_european(spec);
  const McResult via_american = monte_carlo_american(spec);
  EXPECT_DOUBLE_EQ(direct.price, via_american.price);
  EXPECT_EQ(via_american.time_steps, 1u);
}

TEST(MonteCarlo, ValidatesConfig) {
  const OptionSpec spec = euro_call();
  McConfig bad;
  bad.paths = 10;
  EXPECT_THROW((void)monte_carlo_european(spec, bad), PreconditionError);
  bad = McConfig{};
  bad.basis_degree = 9;
  EXPECT_THROW((void)monte_carlo_american(spec, bad), PreconditionError);
}

}  // namespace
}  // namespace binopt::finance
