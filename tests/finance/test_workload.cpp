#include "finance/workload.h"

#include <gtest/gtest.h>

namespace binopt::finance {
namespace {

TEST(Workload, RandomBatchIsDeterministic) {
  const auto a = make_random_batch(100, 1234);
  const auto b = make_random_batch(100, 1234);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_TRUE(a[i] == b[i]);
}

TEST(Workload, DifferentSeedsDiffer) {
  const auto a = make_random_batch(50, 1);
  const auto b = make_random_batch(50, 2);
  bool any_diff = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (!(a[i] == b[i])) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(Workload, RandomBatchRespectsRanges) {
  WorkloadConfig config;
  for (const OptionSpec& spec : make_random_batch(500, 77, config)) {
    EXPECT_GE(spec.strike, config.strike_lo);
    EXPECT_LE(spec.strike, config.strike_hi);
    EXPECT_GE(spec.volatility, config.vol_lo);
    EXPECT_LE(spec.volatility, config.vol_hi);
    EXPECT_GE(spec.rate, config.rate_lo);
    EXPECT_LE(spec.rate, config.rate_hi);
    EXPECT_GE(spec.maturity, config.maturity_lo);
    EXPECT_LE(spec.maturity, config.maturity_hi);
    EXPECT_NO_THROW(spec.validate());
  }
}

TEST(Workload, CurveBatchHasLadderedStrikesAndSmileVols) {
  const auto batch = make_curve_batch(2000);
  ASSERT_EQ(batch.size(), 2000u);  // the paper's curve size
  EXPECT_NEAR(batch.front().strike, 60.0, 1e-12);
  EXPECT_NEAR(batch.back().strike, 140.0, 1e-12);
  for (std::size_t i = 1; i < batch.size(); ++i) {
    EXPECT_GT(batch[i].strike, batch[i - 1].strike);
  }
  // Smile: wings above the middle.
  EXPECT_GT(batch.front().volatility, batch[1000].volatility);
}

TEST(Workload, CurveBatchIsAmericanCalls) {
  for (const OptionSpec& spec : make_curve_batch(10)) {
    EXPECT_EQ(spec.style, ExerciseStyle::kAmerican);
    EXPECT_EQ(spec.type, OptionType::kCall);
  }
}

TEST(Workload, SmokeBatchIsCuratedAndValid) {
  const auto batch = make_smoke_batch();
  EXPECT_GE(batch.size(), 6u);
  for (const OptionSpec& spec : batch) EXPECT_NO_THROW(spec.validate());
}

TEST(Workload, RejectsEmptyBatches) {
  EXPECT_THROW((void)make_random_batch(0, 1), PreconditionError);
  EXPECT_THROW((void)make_curve_batch(1), PreconditionError);
}

}  // namespace
}  // namespace binopt::finance
