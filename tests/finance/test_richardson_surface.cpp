#include <gtest/gtest.h>

#include <cmath>

#include "finance/binomial.h"
#include "finance/black_scholes.h"
#include "finance/richardson.h"
#include "finance/vol_surface.h"

namespace binopt::finance {
namespace {

OptionSpec base(OptionType type, ExerciseStyle style) {
  OptionSpec spec;
  spec.spot = 100.0;
  spec.strike = 100.0;
  spec.rate = 0.05;
  spec.volatility = 0.20;
  spec.maturity = 1.0;
  spec.type = type;
  spec.style = style;
  return spec;
}

// --- BBS / BBSR ---------------------------------------------------------------

TEST(Bbs, EuropeanKeepsFirstOrderBiasButBbsrRemovesIt) {
  const OptionSpec spec = base(OptionType::kCall, ExerciseStyle::kEuropean);
  const double analytic = black_scholes_price(spec);
  // BBS only smooths the odd/even oscillation — the O(1/N) bias remains;
  // Richardson extrapolation (BBSR) cancels it.
  const double bbs_err = std::abs(bbs_price(spec, 64) - analytic);
  const double bbsr_err = std::abs(bbsr_price(spec, 64) - analytic);
  EXPECT_LT(bbs_err, 2e-2);
  EXPECT_LT(bbsr_err, 5e-4);
  EXPECT_LT(bbsr_err, bbs_err / 5.0);
}

TEST(Bbs, SmoothInN) {
  // Plain CRR oscillates between adjacent N; BBS must not.
  OptionSpec spec = base(OptionType::kCall, ExerciseStyle::kEuropean);
  spec.strike = 117.0;  // off the leaf grid, worst case for CRR
  const double analytic = black_scholes_price(spec);
  double worst_bbs = 0.0;
  double worst_crr = 0.0;
  for (std::size_t n = 100; n <= 110; ++n) {
    worst_bbs = std::max(worst_bbs, std::abs(bbs_price(spec, n) - analytic));
    worst_crr = std::max(worst_crr,
                         std::abs(BinomialPricer(n).price(spec) - analytic));
  }
  EXPECT_LT(worst_bbs, worst_crr);
  EXPECT_LT(worst_bbs, 2e-3);
}

TEST(Bbsr, BeatsPlainCrrAtEqualWork) {
  const OptionSpec spec = base(OptionType::kPut, ExerciseStyle::kAmerican);
  const double anchor = 0.5 * (BinomialPricer(8192).price(spec) +
                               BinomialPricer(8193).price(spec));
  // BBSR(128) does ~1.25x the work of CRR(128) but should be much closer
  // to the converged value than CRR(1024).
  const double bbsr_err = std::abs(bbsr_price(spec, 128) - anchor);
  const double crr_err = std::abs(BinomialPricer(1024).price(spec) - anchor);
  EXPECT_LT(bbsr_err, crr_err + 5e-4);
  EXPECT_LT(bbsr_err, 2e-3);
}

TEST(Bbsr, AmericanCallOnNoDividendEqualsEuropean) {
  const OptionSpec amer = base(OptionType::kCall, ExerciseStyle::kAmerican);
  const OptionSpec euro = base(OptionType::kCall, ExerciseStyle::kEuropean);
  EXPECT_NEAR(bbsr_price(amer, 64), bbsr_price(euro, 64), 1e-10);
}

TEST(Bbsr, ValidatesStepCount) {
  const OptionSpec spec = base(OptionType::kCall, ExerciseStyle::kEuropean);
  EXPECT_THROW((void)bbsr_price(spec, 7), PreconditionError);
  EXPECT_THROW((void)bbsr_price(spec, 2), PreconditionError);
}

// --- VolSurface -----------------------------------------------------------------

VolSurface make_surface() {
  // 3 maturities x 4 strikes, gentle smile rising with maturity.
  return VolSurface({0.25, 1.0, 2.0}, {80.0, 90.0, 100.0, 110.0},
                    {0.25, 0.22, 0.20, 0.21,    // T = 0.25
                     0.26, 0.23, 0.21, 0.22,    // T = 1.0
                     0.27, 0.24, 0.22, 0.23});  // T = 2.0
}

TEST(VolSurface, GridAccessors) {
  const VolSurface s = make_surface();
  EXPECT_EQ(s.maturity_count(), 3u);
  EXPECT_EQ(s.strike_count(), 4u);
  EXPECT_DOUBLE_EQ(s.vol_at(0, 0), 0.25);
  EXPECT_DOUBLE_EQ(s.vol_at(2, 3), 0.23);
  EXPECT_THROW((void)s.vol_at(3, 0), PreconditionError);
}

TEST(VolSurface, InterpolationReproducesNodes) {
  const VolSurface s = make_surface();
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 4; ++j) {
      EXPECT_NEAR(s.interpolate(s.maturities()[i], s.strikes()[j]),
                  s.vol_at(i, j), 1e-14);
    }
  }
}

TEST(VolSurface, BilinearMidpoint) {
  const VolSurface s = make_surface();
  // Midpoint of the (T=0.25..1.0, K=90..100) cell.
  const double expected = 0.25 * (0.22 + 0.20 + 0.23 + 0.21);
  EXPECT_NEAR(s.interpolate(0.625, 95.0), expected, 1e-14);
}

TEST(VolSurface, FlatExtrapolationBeyondHull) {
  const VolSurface s = make_surface();
  EXPECT_DOUBLE_EQ(s.interpolate(0.01, 50.0), s.vol_at(0, 0));
  EXPECT_DOUBLE_EQ(s.interpolate(10.0, 500.0), s.vol_at(2, 3));
}

TEST(VolSurface, CalendarArbitrageDetection) {
  EXPECT_EQ(make_surface().calendar_arbitrage_violations(), 0u);
  // Force a violation: huge short-dated vol, tiny long-dated vol.
  const VolSurface bad({0.25, 1.0}, {90.0, 100.0},
                       {0.80, 0.80, 0.10, 0.10});
  EXPECT_GT(bad.calendar_arbitrage_violations(), 0u);
}

TEST(VolSurface, ValidatesConstruction) {
  EXPECT_THROW(VolSurface({1.0, 0.5}, {90.0, 100.0}, {0.2, 0.2, 0.2, 0.2}),
               PreconditionError);  // decreasing maturities
  EXPECT_THROW(VolSurface({0.5, 1.0}, {90.0, 100.0}, {0.2, 0.2, 0.2}),
               PreconditionError);  // wrong grid size
  EXPECT_THROW(VolSurface({0.5, 1.0}, {90.0, 100.0}, {0.2, -0.1, 0.2, 0.2}),
               PreconditionError);  // negative vol
}

}  // namespace
}  // namespace binopt::finance
