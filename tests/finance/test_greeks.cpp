#include "finance/greeks.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstddef>

#include "finance/black_scholes.h"

namespace binopt::finance {
namespace {

OptionSpec euro_call() {
  OptionSpec spec;
  spec.spot = 100.0;
  spec.strike = 100.0;
  spec.rate = 0.05;
  spec.volatility = 0.20;
  spec.maturity = 1.0;
  spec.type = OptionType::kCall;
  spec.style = ExerciseStyle::kEuropean;
  return spec;
}

TEST(Greeks, EuropeanCallDeltaMatchesBlackScholes) {
  const OptionSpec spec = euro_call();
  const Greeks g = binomial_greeks(spec, 2048);
  const double bs_delta = norm_cdf(black_scholes_d1(spec));
  EXPECT_NEAR(g.delta, bs_delta, 5e-3);
}

TEST(Greeks, EuropeanVegaMatchesBlackScholes) {
  const OptionSpec spec = euro_call();
  const Greeks g = binomial_greeks(spec, 1024);
  EXPECT_NEAR(g.vega, black_scholes_vega(spec), 0.05);
}

TEST(Greeks, CallDeltaInUnitInterval) {
  OptionSpec spec = euro_call();
  spec.style = ExerciseStyle::kAmerican;
  for (double k : {60.0, 100.0, 150.0}) {
    spec.strike = k;
    const Greeks g = binomial_greeks(spec, 256);
    EXPECT_GE(g.delta, 0.0) << "strike " << k;
    EXPECT_LE(g.delta, 1.0) << "strike " << k;
  }
}

TEST(Greeks, PutDeltaNegative) {
  OptionSpec spec = euro_call();
  spec.type = OptionType::kPut;
  spec.style = ExerciseStyle::kAmerican;
  const Greeks g = binomial_greeks(spec, 256);
  EXPECT_LT(g.delta, 0.0);
  EXPECT_GE(g.delta, -1.0);
}

TEST(Greeks, GammaPositive) {
  const Greeks g = binomial_greeks(euro_call(), 512);
  EXPECT_GT(g.gamma, 0.0);
}

TEST(Greeks, ThetaNegativeForAtmCall) {
  const Greeks g = binomial_greeks(euro_call(), 512);
  EXPECT_LT(g.theta, 0.0);
}

TEST(Greeks, RhoPositiveForCallNegativeForPut) {
  OptionSpec spec = euro_call();
  EXPECT_GT(binomial_greeks(spec, 256).rho, 0.0);
  spec.type = OptionType::kPut;
  EXPECT_LT(binomial_greeks(spec, 256).rho, 0.0);
}

TEST(Greeks, PriceFieldMatchesPricer) {
  const OptionSpec spec = euro_call();
  EXPECT_NEAR(binomial_greeks(spec, 256).price,
              BinomialPricer(256).price(spec), 1e-12);
}

TEST(Greeks, RejectsTinyTrees) {
  EXPECT_THROW((void)binomial_greeks(euro_call(), 1), PreconditionError);
}

// ---------------------------------------------------------------------------
// Decomposition: binomial_greeks must be exactly the composition of its
// three published pieces — the contract GreeksService relies on for
// cross-path bitwise parity.

TEST(Greeks, ComposesFromFrontBumpSetAndAssembly) {
  const OptionSpec spec = euro_call();
  constexpr std::size_t kSteps = 256;
  const Greeks direct = binomial_greeks(spec, kSteps);

  const LatticeFront front = lattice_front_greeks(spec, kSteps);
  const GreeksBumpSet set = GreeksBumpSet::from(spec, kSteps);
  const BinomialPricer pricer(kSteps);
  const Greeks composed = assemble_greeks(
      front, set, pricer.price(set.vega_up), pricer.price(set.vega_down),
      pricer.price(set.rho_up), pricer.price(set.rho_down));

  EXPECT_EQ(direct.price, composed.price);  // bitwise, all six
  EXPECT_EQ(direct.delta, composed.delta);
  EXPECT_EQ(direct.gamma, composed.gamma);
  EXPECT_EQ(direct.theta, composed.theta);
  EXPECT_EQ(direct.vega, composed.vega);
  EXPECT_EQ(direct.rho, composed.rho);
}

TEST(Greeks, LatticeFrontMatchesPricerBitwise) {
  // The rolling-row induction must reproduce BinomialPricer::price
  // bit-for-bit, including the steps == 2 edge where the recorded time-2
  // level is the leaf row itself.
  for (const std::size_t steps : {std::size_t{2}, std::size_t{3},
                                  std::size_t{64}, std::size_t{257}}) {
    OptionSpec spec = euro_call();
    spec.style = ExerciseStyle::kAmerican;
    spec.type = OptionType::kPut;
    EXPECT_EQ(lattice_front_greeks(spec, steps).price,
              BinomialPricer(steps).price(spec))
        << "steps " << steps;
  }
}

// ---------------------------------------------------------------------------
// Bump-underflow regression (the bug this PR fixes): at sigma = 5e-5 the
// old code clamped the down-vol leg to max(vol - bump, 1e-6) — an invalid
// lattice (pricing throws) — and still divided the difference by the
// nominal 2*bump, silently halving one-sided vegas that did survive.

TEST(GreeksBumps, TinyVolZeroRateDegradesVegaToForwardDifference) {
  OptionSpec spec = euro_call();
  spec.rate = 0.0;
  spec.volatility = 5e-5;  // default bump 1e-4 would shoot past zero
  constexpr std::size_t kSteps = 64;

  const GreeksBumpSet set = GreeksBumpSet::from(spec, kSteps);
  EXPECT_TRUE(set.vega_one_sided);
  // The down leg IS the unbumped spec; the divisor is the one-sided width.
  EXPECT_EQ(set.vega_down.volatility, spec.volatility);
  EXPECT_EQ(set.vega_divisor, set.vega_up.volatility - spec.volatility);
  EXPECT_GT(set.vega_divisor, 0.0);

  const Greeks g = binomial_greeks(spec, kSteps);
  EXPECT_TRUE(std::isfinite(g.vega));
  EXPECT_TRUE(std::isfinite(g.rho));
  // Forward-difference check against the legs themselves: the clamped
  // divisor must be the width actually priced, not the nominal 2*bump.
  const BinomialPricer pricer(kSteps);
  const double expected = (pricer.price(set.vega_up) - pricer.price(spec)) /
                          set.vega_divisor;
  EXPECT_EQ(g.vega, expected);
}

TEST(GreeksBumps, CentralVegaKeptWhenBothLegsFeasible) {
  const GreeksBumpSet set = GreeksBumpSet::from(euro_call(), 64);
  EXPECT_FALSE(set.vega_one_sided);
  EXPECT_FALSE(set.rho_one_sided);
  EXPECT_EQ(set.vega_up.volatility, euro_call().volatility + 1e-4);
  EXPECT_EQ(set.vega_down.volatility, euro_call().volatility - 1e-4);
  EXPECT_EQ(set.vega_divisor,
            set.vega_up.volatility - set.vega_down.volatility);
}

TEST(GreeksBumps, RhoClampsTheInfeasibleDirection) {
  // r = 1e-4, vol = 8e-5, steps = 4 (sqrt(dt) = 0.5): bumping the rate UP
  // to 2e-4 pushes the feasibility floor (|r|*sqrt(dt)*1.02 ~ 1.02e-4)
  // past the vol, while bumping DOWN to 0 is fine — a backward difference.
  OptionSpec spec = euro_call();
  spec.rate = 1e-4;
  spec.volatility = 8e-5;
  const GreeksBumpSet set = GreeksBumpSet::from(spec, 4);
  EXPECT_TRUE(set.rho_one_sided);
  EXPECT_EQ(set.rho_up.rate, spec.rate);  // up leg stays unbumped
  EXPECT_EQ(set.rho_down.rate, spec.rate - 1e-4);
  EXPECT_EQ(set.rho_divisor, set.rho_up.rate - set.rho_down.rate);

  const Greeks g = binomial_greeks(spec, 4);
  EXPECT_TRUE(std::isfinite(g.rho));
}

TEST(GreeksBumps, RhoHalvesBumpWhenNeitherDirectionFeasible) {
  // r = 0, vol = 5e-5, steps = 4: at the full 1e-4 width BOTH shifted
  // rates put the floor (1e-4*0.5*1.02 = 5.1e-5) above the vol; one
  // halving brings both back inside. The result is a narrower central
  // difference, never a throw.
  OptionSpec spec = euro_call();
  spec.rate = 0.0;
  spec.volatility = 5e-5;
  const GreeksBumpSet set = GreeksBumpSet::from(spec, 4);
  EXPECT_FALSE(set.rho_one_sided);
  EXPECT_LT(set.rho_divisor, 2e-4);
  EXPECT_GT(set.rho_divisor, 0.0);
  EXPECT_EQ(set.rho_up.rate - spec.rate, spec.rate - set.rho_down.rate);
  EXPECT_TRUE(std::isfinite(binomial_greeks(spec, 4).rho));
}

TEST(GreeksBumps, RejectsNonPositiveBumps) {
  EXPECT_THROW((void)GreeksBumpSet::from(euro_call(), 64, 0.0, 1e-4),
               PreconditionError);
  EXPECT_THROW((void)GreeksBumpSet::from(euro_call(), 64, 1e-4, -1e-4),
               PreconditionError);
}

// ---------------------------------------------------------------------------
// Theta sign/units pin (satellite 3): the interior-node theta must agree
// with an honest central finite difference in MATURITY, -(P(T+h) -
// P(T-h)) / (2h), in sign, units (per year) and magnitude, for every
// style x type combination.

TEST(GreeksTheta, MatchesMaturityFiniteDifferenceAllStyles) {
  constexpr std::size_t kSteps = 512;
  constexpr double kBump = 1e-3;
  const BinomialPricer pricer(kSteps);
  for (const ExerciseStyle style :
       {ExerciseStyle::kEuropean, ExerciseStyle::kAmerican}) {
    for (const OptionType type : {OptionType::kCall, OptionType::kPut}) {
      OptionSpec spec = euro_call();
      spec.style = style;
      spec.type = type;
      const Greeks g = binomial_greeks(spec, kSteps);

      OptionSpec longer = spec;
      longer.maturity = spec.maturity + kBump;
      OptionSpec shorter = spec;
      shorter.maturity = spec.maturity - kBump;
      const double fd_theta =
          -(pricer.price(longer) - pricer.price(shorter)) / (2.0 * kBump);

      EXPECT_NEAR(g.theta, fd_theta,
                  std::max(0.05 * std::abs(fd_theta), 0.05))
          << "style " << static_cast<int>(style) << " type "
          << static_cast<int>(type);
      if (type == OptionType::kCall) {
        EXPECT_LT(g.theta, 0.0);  // ATM call decays
      }
    }
  }
}

}  // namespace
}  // namespace binopt::finance
