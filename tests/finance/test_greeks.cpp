#include "finance/greeks.h"

#include <gtest/gtest.h>

#include "finance/black_scholes.h"

namespace binopt::finance {
namespace {

OptionSpec euro_call() {
  OptionSpec spec;
  spec.spot = 100.0;
  spec.strike = 100.0;
  spec.rate = 0.05;
  spec.volatility = 0.20;
  spec.maturity = 1.0;
  spec.type = OptionType::kCall;
  spec.style = ExerciseStyle::kEuropean;
  return spec;
}

TEST(Greeks, EuropeanCallDeltaMatchesBlackScholes) {
  const OptionSpec spec = euro_call();
  const Greeks g = binomial_greeks(spec, 2048);
  const double bs_delta = norm_cdf(black_scholes_d1(spec));
  EXPECT_NEAR(g.delta, bs_delta, 5e-3);
}

TEST(Greeks, EuropeanVegaMatchesBlackScholes) {
  const OptionSpec spec = euro_call();
  const Greeks g = binomial_greeks(spec, 1024);
  EXPECT_NEAR(g.vega, black_scholes_vega(spec), 0.05);
}

TEST(Greeks, CallDeltaInUnitInterval) {
  OptionSpec spec = euro_call();
  spec.style = ExerciseStyle::kAmerican;
  for (double k : {60.0, 100.0, 150.0}) {
    spec.strike = k;
    const Greeks g = binomial_greeks(spec, 256);
    EXPECT_GE(g.delta, 0.0) << "strike " << k;
    EXPECT_LE(g.delta, 1.0) << "strike " << k;
  }
}

TEST(Greeks, PutDeltaNegative) {
  OptionSpec spec = euro_call();
  spec.type = OptionType::kPut;
  spec.style = ExerciseStyle::kAmerican;
  const Greeks g = binomial_greeks(spec, 256);
  EXPECT_LT(g.delta, 0.0);
  EXPECT_GE(g.delta, -1.0);
}

TEST(Greeks, GammaPositive) {
  const Greeks g = binomial_greeks(euro_call(), 512);
  EXPECT_GT(g.gamma, 0.0);
}

TEST(Greeks, ThetaNegativeForAtmCall) {
  const Greeks g = binomial_greeks(euro_call(), 512);
  EXPECT_LT(g.theta, 0.0);
}

TEST(Greeks, RhoPositiveForCallNegativeForPut) {
  OptionSpec spec = euro_call();
  EXPECT_GT(binomial_greeks(spec, 256).rho, 0.0);
  spec.type = OptionType::kPut;
  EXPECT_LT(binomial_greeks(spec, 256).rho, 0.0);
}

TEST(Greeks, PriceFieldMatchesPricer) {
  const OptionSpec spec = euro_call();
  EXPECT_NEAR(binomial_greeks(spec, 256).price,
              BinomialPricer(256).price(spec), 1e-12);
}

TEST(Greeks, RejectsTinyTrees) {
  EXPECT_THROW((void)binomial_greeks(euro_call(), 1), PreconditionError);
}

}  // namespace
}  // namespace binopt::finance
