#include "finance/vol_curve.h"

#include <gtest/gtest.h>

#include <cmath>

#include "finance/binomial.h"

namespace binopt::finance {
namespace {

OptionSpec base_option() {
  OptionSpec spec;
  spec.spot = 100.0;
  spec.rate = 0.04;
  spec.maturity = 1.0;
  spec.type = OptionType::kCall;
  spec.style = ExerciseStyle::kAmerican;
  return spec;
}

TEST(SmileModel, AtForwardReturnsBaseVol) {
  const SmileModel smile;
  EXPECT_NEAR(smile.vol_at(100.0, 100.0), smile.base_vol, 1e-15);
}

TEST(SmileModel, SkewTiltsWings) {
  SmileModel smile;
  smile.skew = -0.10;
  smile.smile = 0.0;
  EXPECT_GT(smile.vol_at(80.0, 100.0), smile.vol_at(120.0, 100.0));
}

TEST(SmileModel, FlooredAtMinVol) {
  SmileModel smile;
  smile.base_vol = 0.05;
  smile.skew = 0.5;  // would go negative for low strikes
  smile.smile = 0.0;
  EXPECT_GE(smile.vol_at(10.0, 100.0), smile.min_vol);
}

TEST(SynthesizeChain, ProducesMonotoneStrikesAndPositivePrices) {
  const auto chain =
      synthesize_chain(base_option(), SmileModel{}, 25, 0.7, 1.3, 128);
  ASSERT_EQ(chain.size(), 25u);
  for (std::size_t i = 0; i < chain.size(); ++i) {
    EXPECT_GT(chain[i].price, 0.0);
    if (i > 0) {
      EXPECT_GT(chain[i].strike, chain[i - 1].strike);
    }
  }
}

TEST(SynthesizeChain, CallPricesDecreaseWithStrike) {
  const auto chain =
      synthesize_chain(base_option(), SmileModel{}, 15, 0.8, 1.2, 128);
  for (std::size_t i = 1; i < chain.size(); ++i) {
    EXPECT_LT(chain[i].price, chain[i - 1].price);
  }
}

TEST(VolCurveBuilder, RecoversTheGeneratingSmile) {
  const OptionSpec base = base_option();
  SmileModel smile;
  smile.base_vol = 0.22;
  smile.skew = -0.08;
  smile.smile = 0.10;
  const std::size_t steps = 128;
  const auto chain = synthesize_chain(base, smile, 21, 0.8, 1.2, steps);

  const BinomialPricer pricer(steps);
  ImpliedVolConfig config;
  config.sigma_lo = LatticeParams::min_volatility(base, steps);
  VolCurveBuilder builder(
      base, [&](const OptionSpec& s) { return pricer.price(s); }, config);
  const auto curve = builder.build(chain);
  ASSERT_EQ(curve.size(), chain.size());

  const double forward =
      base.spot * std::exp((base.rate - base.dividend) * base.maturity);
  for (const VolCurvePoint& point : curve) {
    ASSERT_TRUE(point.converged) << "strike " << point.strike;
    EXPECT_NEAR(point.implied_vol, smile.vol_at(point.strike, forward), 5e-4)
        << "strike " << point.strike;
  }
}

TEST(VolCurveBuilder, FlagsJunkQuotesWithoutThrowing) {
  const OptionSpec base = base_option();
  const BinomialPricer pricer(64);
  VolCurveBuilder builder(base,
                          [&](const OptionSpec& s) { return pricer.price(s); });
  std::vector<MarketQuote> quotes{{100.0, 1e9}};  // absurd premium
  const auto curve = builder.build(quotes);
  ASSERT_EQ(curve.size(), 1u);
  EXPECT_FALSE(curve[0].converged);
}

TEST(VolCurveBuilder, MaxPricingsBoundsWork) {
  const OptionSpec base = base_option();
  ImpliedVolConfig config;
  config.max_iterations = 50;
  VolCurveBuilder builder(
      base, [](const OptionSpec& s) { return s.spot; }, config);
  EXPECT_EQ(builder.max_pricings(2000), 2000u * 52u);
}

}  // namespace
}  // namespace binopt::finance
