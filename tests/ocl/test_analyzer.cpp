// Kernel hazard analyzer tests (src/ocl/analyzer/).
//
// Four seeded-bug kernels — the classic OpenCL-port mistakes on the
// paper's kernels — must each be flagged with correct work-item/offset
// attribution:
//   1. kernel IV.B's backward loop with the second barrier removed
//      (read/write race on the shared local value row),
//   2. an out-of-bounds global read at the last tree level,
//   3. a read of the local row before any work-item initialised it,
//   4. a barrier under work-item-dependent control flow.
// The clean paper kernels must produce zero diagnostics (with
// compute_units > 1), and the disabled analyzer must change nothing:
// identical prices, bit-identical RuntimeStats.
//
// The static IR lint (analyzer/ir_lint.*) and the host-side
// Buffer::write/read range checks are covered at the bottom.
#include <gtest/gtest.h>

#include <cstddef>
#include <span>
#include <vector>

#include "finance/workload.h"
#include "kernels/ir_builders.h"
#include "kernels/kernel_a.h"
#include "kernels/kernel_b.h"
#include "ocl/analyzer/ir_lint.h"
#include "ocl/context.h"
#include "ocl/device.h"
#include "ocl/queue.h"

namespace binopt::ocl {
namespace {

namespace an = analyzer;
using an::Hazard;
using an::HazardKind;

constexpr std::size_t kMiB = 1024 * 1024;

Device make_device(std::size_t compute_units = 1, std::size_t max_group = 64) {
  return Device("an-test", DeviceKind::kFpga,
                DeviceLimits{16 * kMiB, 16 * 1024, max_group, compute_units});
}

/// Arms a device's hazard analyzer. Must run before buffers are created so
/// every buffer gets a written-byte shadow.
void enable_analyzer(Device& device) {
  an::AnalyzerConfig config;
  config.enabled = true;
  device.set_analyzer(config);
}

const Hazard* find_hazard(const std::vector<Hazard>& hazards, HazardKind kind) {
  for (const Hazard& h : hazards) {
    if (h.kind == kind) return &h;
  }
  return nullptr;
}

// ---------------------------------------------------------------------------
// Seeded bug 1: kernel IV.B's loop with the second barrier removed. Each
// iteration reads values[k] / values[k+1] and writes values[k] with only
// ONE barrier per iteration — work-item k's store to values[k] races with
// work-item k-1's load of the same element in the same epoch.
// ---------------------------------------------------------------------------

Kernel make_missing_barrier_kernel(std::size_t steps) {
  Kernel kernel;
  kernel.name = "seeded_missing_barrier";
  kernel.body = [steps](WorkItemCtx& ctx, const KernelArgs& args) {
    auto results = ctx.global<double>(args.buffer(0));
    const std::size_t n = steps;
    const std::size_t k = ctx.local_id();
    auto values = ctx.local_array<double>(n + 1);
    values.set(k, static_cast<double>(k));
    if (k == n - 1) values.set(n, static_cast<double>(n));
    ctx.barrier();
    for (std::size_t t = n; t-- > 0;) {
      double v = 0.0;
      if (k <= t) v = 0.5 * (values.get(k) + values.get(k + 1));
      ctx.barrier();
      if (k <= t) values.set(k, v);
      // BUG: no second barrier — the next iteration's loads race with
      // this store. (The correct kernel has ctx.barrier() here.)
    }
    if (k == 0) results.set(ctx.group_id(), values.get(0));
  };
  return kernel;
}

TEST(AnalyzerSeededBugs, MissingBarrierRaceIsFlaggedWithAttribution) {
  Device device = make_device();
  enable_analyzer(device);
  Context context(device);
  CommandQueue queue(context);
  Buffer& results = context.create_buffer_of<double>(1, MemFlags::kWriteOnly,
                                                     "results");

  constexpr std::size_t kSteps = 8;
  KernelArgs args;
  args.set(0, &results);
  queue.enqueue_ndrange(make_missing_barrier_kernel(kSteps), args,
                        NDRange{kSteps, kSteps});

  const an::HazardReport& report = device.hazard_report();
  ASSERT_GE(report.count(HazardKind::kLocalRaceReadWrite), 1u);
  EXPECT_EQ(report.count(HazardKind::kLocalOutOfBounds), 0u);
  EXPECT_EQ(report.count(HazardKind::kLocalUninitRead), 0u);

  const std::vector<Hazard> hazards = report.hazards();
  const Hazard* race = find_hazard(hazards, HazardKind::kLocalRaceReadWrite);
  ASSERT_NE(race, nullptr);
  EXPECT_EQ(race->kernel, "seeded_missing_barrier");
  EXPECT_EQ(race->resource, "local[0]");
  // Round-robin scheduling: work-item 0 runs first in the post-store
  // epoch, loads values[1], then work-item 1 stores values[1] — so the
  // first recorded conflict is item 1's store against item 0's load of
  // element 1 (byte offset 8).
  EXPECT_EQ(race->second.work_item, 1u);
  EXPECT_TRUE(race->second.is_write);
  EXPECT_EQ(race->first.work_item, 0u);
  EXPECT_FALSE(race->first.is_write);
  EXPECT_EQ(race->first.epoch, race->second.epoch);
  EXPECT_EQ(race->byte_offset, 8u);
  EXPECT_EQ(race->bytes, 8u);
}

TEST(AnalyzerSeededBugs, CorrectTwoBarrierLoopIsClean) {
  Device device = make_device();
  enable_analyzer(device);
  Context context(device);
  CommandQueue queue(context);
  Buffer& results = context.create_buffer_of<double>(1, MemFlags::kWriteOnly,
                                                     "results");

  constexpr std::size_t kSteps = 8;
  Kernel kernel;
  kernel.name = "two_barrier_loop";
  kernel.body = [](WorkItemCtx& ctx, const KernelArgs& args) {
    auto results = ctx.global<double>(args.buffer(0));
    const std::size_t n = ctx.local_size();
    const std::size_t k = ctx.local_id();
    auto values = ctx.local_array<double>(n + 1);
    values.set(k, static_cast<double>(k));
    if (k == n - 1) values.set(n, static_cast<double>(n));
    ctx.barrier();
    for (std::size_t t = n; t-- > 0;) {
      double v = 0.0;
      if (k <= t) v = 0.5 * (values.get(k) + values.get(k + 1));
      ctx.barrier();
      if (k <= t) values.set(k, v);
      ctx.barrier();  // the barrier the seeded kernel dropped
    }
    if (k == 0) results.set(ctx.group_id(), values.get(0));
  };
  KernelArgs args;
  args.set(0, &results);
  queue.enqueue_ndrange(kernel, args, NDRange{kSteps, kSteps});

  EXPECT_TRUE(device.hazard_report().empty())
      << device.hazard_report().to_string();
}

// ---------------------------------------------------------------------------
// Seeded bug 2: out-of-bounds global read at the last tree level — the
// kernel IV.A child-address arithmetic run one level too deep, so the
// deepest work-item's up-child load lands one element past the buffer.
// ---------------------------------------------------------------------------

TEST(AnalyzerSeededBugs, GlobalOutOfBoundsReadAtLastLevelIsFlagged) {
  Device device = make_device();
  enable_analyzer(device);
  Context context(device);
  CommandQueue queue(context);

  constexpr std::size_t kElems = 16;
  Buffer& tree = context.create_buffer_of<double>(kElems, MemFlags::kReadOnly,
                                                  "tree_levels");
  Buffer& out = context.create_buffer_of<double>(kElems, MemFlags::kWriteOnly,
                                                 "out");
  const std::vector<double> host(kElems, 1.0);
  queue.write<double>(tree, host);

  Kernel kernel;
  kernel.name = "seeded_oob_last_level";
  kernel.body = [](WorkItemCtx& ctx, const KernelArgs& args) {
    auto tree = ctx.global<double>(args.buffer(0));
    auto out = ctx.global<double>(args.buffer(1));
    const std::size_t id = ctx.global_id();
    // BUG: the up-child of the last work-item is tree[kElems] — one past
    // the end. The analyzer suppresses the access (yielding 0.0) instead
    // of aborting the kernel.
    out.set(id, tree.get(id) + tree.get(id + 1));
  };
  KernelArgs args;
  args.set(0, &tree);
  args.set(1, &out);
  queue.enqueue_ndrange(kernel, args, NDRange{kElems, 8});

  const an::HazardReport& report = device.hazard_report();
  ASSERT_EQ(report.count(HazardKind::kGlobalOutOfBounds), 1u);
  const std::vector<Hazard> hazards = report.hazards();
  const Hazard* oob = find_hazard(hazards, HazardKind::kGlobalOutOfBounds);
  ASSERT_NE(oob, nullptr);
  EXPECT_EQ(oob->kernel, "seeded_oob_last_level");
  EXPECT_EQ(oob->resource, "tree_levels");
  EXPECT_EQ(oob->byte_offset, kElems * sizeof(double));
  EXPECT_EQ(oob->bytes, sizeof(double));
  // Global id 15 = local id 7 of group 1.
  EXPECT_EQ(oob->group_id, 1u);
  EXPECT_EQ(oob->second.work_item, 7u);
  EXPECT_FALSE(oob->second.is_write);

  // The access was suppressed, not fatal: every work-item still stored,
  // and the suppressed load contributed 0.0.
  std::vector<double> result(kElems, -1.0);
  queue.read<double>(out, result);
  EXPECT_DOUBLE_EQ(result[kElems - 1], 1.0);
  EXPECT_DOUBLE_EQ(result[0], 2.0);
}

// ---------------------------------------------------------------------------
// Seeded bug 3: reading the shared local row before anyone wrote it.
// ---------------------------------------------------------------------------

TEST(AnalyzerSeededBugs, UninitializedLocalReadIsFlagged) {
  Device device = make_device();
  enable_analyzer(device);
  Context context(device);
  CommandQueue queue(context);
  Buffer& out = context.create_buffer_of<double>(8, MemFlags::kWriteOnly,
                                                 "out");

  Kernel kernel;
  kernel.name = "seeded_uninit_local";
  kernel.body = [](WorkItemCtx& ctx, const KernelArgs& args) {
    auto out = ctx.global<double>(args.buffer(0));
    const std::size_t k = ctx.local_id();
    auto values = ctx.local_array<double>(ctx.local_size());
    // BUG: values[k] is read before the (forgotten) initialisation.
    const double v = values.get(k);
    ctx.barrier();
    values.set(k, v + 1.0);
    ctx.barrier();
    out.set(ctx.global_id(), values.get(k));
  };
  KernelArgs args;
  args.set(0, &out);
  queue.enqueue_ndrange(kernel, args, NDRange{8, 8});

  const an::HazardReport& report = device.hazard_report();
  ASSERT_GE(report.count(HazardKind::kLocalUninitRead), 1u);
  EXPECT_EQ(report.count(HazardKind::kLocalRaceReadWrite), 0u);
  const std::vector<Hazard> hazards = report.hazards();
  const Hazard* uninit = find_hazard(hazards, HazardKind::kLocalUninitRead);
  ASSERT_NE(uninit, nullptr);
  EXPECT_EQ(uninit->kernel, "seeded_uninit_local");
  EXPECT_EQ(uninit->resource, "local[0]");
  // Work-item 0 runs first and reads element 0.
  EXPECT_EQ(uninit->second.work_item, 0u);
  EXPECT_EQ(uninit->byte_offset, 0u);
}

// ---------------------------------------------------------------------------
// Seeded bug 4: barrier under work-item-dependent control flow. With the
// analyzer on this becomes a diagnostic (and the group is drained); with
// it off the executor keeps throwing as before.
// ---------------------------------------------------------------------------

Kernel make_divergent_barrier_kernel() {
  Kernel kernel;
  kernel.name = "seeded_divergent_barrier";
  kernel.body = [](WorkItemCtx& ctx, const KernelArgs&) {
    // BUG: only the lower half of the group reaches the barrier.
    if (ctx.local_id() < ctx.local_size() / 2) ctx.barrier();
  };
  return kernel;
}

TEST(AnalyzerSeededBugs, DivergentBarrierIsFlaggedNotThrown) {
  Device device = make_device();
  enable_analyzer(device);
  Context context(device);
  CommandQueue queue(context);

  KernelArgs args;
  EXPECT_NO_THROW(queue.enqueue_ndrange(make_divergent_barrier_kernel(), args,
                                        NDRange{8, 8}));

  const an::HazardReport& report = device.hazard_report();
  ASSERT_EQ(report.count(HazardKind::kBarrierDivergence), 1u);
  const std::vector<Hazard> hazards = report.hazards();
  const Hazard* div = find_hazard(hazards, HazardKind::kBarrierDivergence);
  ASSERT_NE(div, nullptr);
  EXPECT_EQ(div->kernel, "seeded_divergent_barrier");
  EXPECT_NE(div->message.find("4 work-item(s) reached a barrier"),
            std::string::npos)
      << div->message;
  EXPECT_NE(div->message.find("4 returned without it"), std::string::npos)
      << div->message;
}

TEST(AnalyzerSeededBugs, DivergentBarrierStillThrowsWithAnalyzerOff) {
  Device device("plain", DeviceKind::kFpga,
                DeviceLimits{16 * kMiB, 16 * 1024, 64, 1});
  Context context(device);
  CommandQueue queue(context);
  KernelArgs args;
  EXPECT_THROW(queue.enqueue_ndrange(make_divergent_barrier_kernel(), args,
                                     NDRange{8, 8}),
               Error);
}

// ---------------------------------------------------------------------------
// Dedup: the missing-barrier race fires once per level per option, but the
// report keeps one site with an occurrence counter.
// ---------------------------------------------------------------------------

TEST(AnalyzerReport, DeduplicatesByKindKernelResource) {
  Device device = make_device();
  enable_analyzer(device);
  Context context(device);
  CommandQueue queue(context);
  Buffer& results = context.create_buffer_of<double>(4, MemFlags::kWriteOnly,
                                                     "results");

  constexpr std::size_t kSteps = 8;
  KernelArgs args;
  args.set(0, &results);
  // Four groups, each racing on every level: many occurrences, one site.
  queue.enqueue_ndrange(make_missing_barrier_kernel(kSteps), args,
                        NDRange{4 * kSteps, kSteps});

  const an::HazardReport& report = device.hazard_report();
  EXPECT_EQ(report.count(HazardKind::kLocalRaceReadWrite), 1u);
  EXPECT_GT(report.total_occurrences(), report.size());
}

TEST(AnalyzerReport, MaxReportsCapsDistinctSitesButKeepsCounting) {
  an::HazardReport report(/*max_reports=*/2);
  for (int i = 0; i < 4; ++i) {
    Hazard hazard;
    hazard.kind = HazardKind::kGlobalOutOfBounds;
    hazard.kernel = "k";
    hazard.resource = "buf" + std::to_string(i);
    report.add(hazard);
  }
  // Only two full diagnostics are kept, but every distinct site and every
  // occurrence is still counted.
  EXPECT_EQ(report.hazards().size(), 2u);
  EXPECT_EQ(report.size(), 4u);
  EXPECT_EQ(report.total_occurrences(), 4u);
}

// ---------------------------------------------------------------------------
// Clean paper kernels: zero diagnostics under the analyzer with multiple
// compute units, and identical results/stats to an analyzer-off device.
// ---------------------------------------------------------------------------

TEST(AnalyzerCleanKernels, KernelAIsCleanOnMultipleComputeUnits) {
  Device device = make_device(/*compute_units=*/4, /*max_group=*/256);
  enable_analyzer(device);
  const auto options = finance::make_random_batch(6, /*seed=*/7);
  kernels::KernelAHostProgram program(device, {.steps = 32});
  const kernels::KernelAResult result = program.run(options);
  EXPECT_EQ(result.prices.size(), options.size());
  EXPECT_TRUE(device.hazard_report().empty())
      << device.hazard_report().to_string();
}

TEST(AnalyzerCleanKernels, KernelBIsCleanOnMultipleComputeUnits) {
  Device device = make_device(/*compute_units=*/4, /*max_group=*/256);
  enable_analyzer(device);
  const auto options = finance::make_random_batch(6, /*seed=*/7);
  kernels::KernelBHostProgram program(device, {.steps = 32});
  const kernels::KernelBResult result = program.run(options);
  EXPECT_EQ(result.prices.size(), options.size());
  EXPECT_TRUE(device.hazard_report().empty())
      << device.hazard_report().to_string();
}

TEST(AnalyzerCleanKernels, HostLeavesVariantIsClean) {
  Device device = make_device(/*compute_units=*/2, /*max_group=*/256);
  enable_analyzer(device);
  const auto options = finance::make_random_batch(4, /*seed=*/11);
  kernels::KernelBHostProgram program(
      device, {.steps = 16, .host_leaves = true});
  (void)program.run(options);
  EXPECT_TRUE(device.hazard_report().empty())
      << device.hazard_report().to_string();
}

TEST(AnalyzerCleanKernels, AnalyzerOnChangesNoPricesOrStats) {
  const auto options = finance::make_random_batch(5, /*seed=*/3);

  Device plain("plain", DeviceKind::kFpga,
               DeviceLimits{16 * kMiB, 16 * 1024, 256, 2});
  kernels::KernelBHostProgram off(plain, {.steps = 32});
  const kernels::KernelBResult r_off = off.run(options);

  Device analyzed = make_device(2, 256);
  enable_analyzer(analyzed);
  kernels::KernelBHostProgram on(analyzed, {.steps = 32});
  const kernels::KernelBResult r_on = on.run(options);

  ASSERT_EQ(r_off.prices.size(), r_on.prices.size());
  for (std::size_t i = 0; i < r_off.prices.size(); ++i) {
    EXPECT_EQ(r_off.prices[i], r_on.prices[i]);  // bit-identical
  }
  EXPECT_EQ(r_off.stats, r_on.stats);
}

// ---------------------------------------------------------------------------
// Static IR lint.
// ---------------------------------------------------------------------------

TEST(IrLint, CleanPaperIrsPass) {
  an::HazardReport report;
  EXPECT_EQ(an::lint_kernel_ir(kernels::kernel_a_ir(1024), report), 0u);
  EXPECT_EQ(an::lint_kernel_ir(kernels::kernel_b_ir(1024), report), 0u);
  EXPECT_TRUE(report.empty()) << report.to_string();
}

TEST(IrLint, IndexBoundPastDeclaredExtentIsFlagged) {
  fpga::KernelIR ir = kernels::kernel_b_ir(64);
  // Seed the classic off-by-one: the local-row load reaches element n+1
  // of an n+1-element row.
  for (fpga::AccessSite& site : ir.accesses) {
    if (site.space == fpga::MemSpace::kLocal && !site.is_store) {
      site.max_index = 65;  // declared words = 65 -> max legal index 64
      break;
    }
  }
  an::HazardReport report;
  EXPECT_EQ(an::lint_kernel_ir(ir, report), 1u);
  EXPECT_EQ(report.count(HazardKind::kStaticIndexOutOfBounds), 1u);
  const std::vector<Hazard> hazards = report.hazards();
  EXPECT_EQ(hazards[0].resource, "local[0]");
  EXPECT_EQ(hazards[0].byte_offset, 65u * 8u);
}

TEST(IrLint, GlobalIndexBoundIsCheckedAgainstDeclaredWords) {
  fpga::KernelIR ir = kernels::kernel_a_ir(16);
  // Pretend the deepest read reaches one past the ping-pong buffer.
  ir.accesses[3].max_index = ir.global_buffers[1].words;
  an::HazardReport report;
  EXPECT_EQ(an::lint_kernel_ir(ir, report), 1u);
  const std::vector<Hazard> hazards = report.hazards();
  EXPECT_EQ(hazards[0].kind, HazardKind::kStaticIndexOutOfBounds);
  EXPECT_EQ(hazards[0].resource, "V_read");
}

TEST(IrLint, DivergentBarrierSiteIsFlagged) {
  fpga::KernelIR ir = kernels::kernel_b_ir(64);
  ir.barriers[1].divergent = true;
  an::HazardReport report;
  EXPECT_EQ(an::lint_kernel_ir(ir, report), 1u);
  EXPECT_EQ(report.count(HazardKind::kStaticDivergentBarrier), 1u);
  EXPECT_EQ(report.hazards()[0].resource, "barrier#1");
}

TEST(IrLint, ValidateRejectsUndeclaredBufferReference) {
  fpga::KernelIR ir = kernels::kernel_b_ir(64);
  ir.accesses[0].buffer = 99;
  an::HazardReport report;
  EXPECT_THROW(an::lint_kernel_ir(ir, report), Error);
}

TEST(IrLint, UntypedSiteIsAnUnprovableErrorByDefault) {
  fpga::KernelIR ir = kernels::kernel_b_ir(64);
  fpga::AccessSite untyped;  // names no buffer, carries no bound
  ir.accesses.push_back(untyped);
  an::HazardReport report;
  EXPECT_EQ(an::lint_kernel_ir(ir, report), 1u);
  EXPECT_EQ(report.count(HazardKind::kStaticUnprovableSite), 1u);
  EXPECT_EQ(report.error_count(), 1u);
  const std::vector<Hazard> hazards = report.hazards();
  ASSERT_EQ(hazards.size(), 1u);
  EXPECT_NE(hazards[0].message.find("names no declared buffer"),
            std::string::npos)
      << hazards[0].message;
}

TEST(IrLint, MissingIndexBoundIsUnprovableAndDowngradable) {
  fpga::KernelIR ir = kernels::kernel_b_ir(64);
  fpga::AccessSite unbounded;
  unbounded.space = fpga::MemSpace::kLocal;
  unbounded.buffer = 0;
  unbounded.has_index_bound = false;  // buffer named, bound absent
  ir.accesses.push_back(unbounded);

  an::HazardReport report;
  an::LintOptions options;
  options.unprovable_severity = an::Severity::kWarning;
  EXPECT_EQ(an::lint_kernel_ir(ir, report, options), 1u);
  EXPECT_EQ(report.count(HazardKind::kStaticUnprovableSite), 1u);
  EXPECT_EQ(report.error_count(), 0u);  // warnings never fail --check
  const std::vector<Hazard> hazards = report.hazards();
  ASSERT_EQ(hazards.size(), 1u);
  const Hazard& hazard = hazards[0];
  EXPECT_NE(hazard.message.find("carries no index bound"), std::string::npos)
      << hazard.message;
  EXPECT_NE(hazard.to_string().find("[warning]"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Host-side Buffer range checks (regression: descriptive errors instead of
// UB for bad enqueue offsets).
// ---------------------------------------------------------------------------

TEST(BufferRangeChecks, HostWritePastEndThrowsDescriptively) {
  Buffer buffer(64, MemFlags::kReadWrite, "rc_buf");
  std::vector<std::byte> payload(32);
  EXPECT_NO_THROW(buffer.write(32, payload));
  try {
    buffer.write(40, payload);
    FAIL() << "expected a range error";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("rc_buf"), std::string::npos) << what;
    EXPECT_NE(what.find("40"), std::string::npos) << what;
  }
}

TEST(BufferRangeChecks, HostReadPastEndThrows) {
  Buffer buffer(64, MemFlags::kReadWrite, "rc_buf");
  std::vector<std::byte> dst(65);
  EXPECT_THROW(buffer.read(0, dst), Error);
  EXPECT_THROW(buffer.read(64, std::span<std::byte>(dst.data(), 1)), Error);
  EXPECT_NO_THROW(buffer.read(0, std::span<std::byte>(dst.data(), 64)));
}

TEST(BufferRangeChecks, OffsetOverflowDoesNotWrapAround) {
  Buffer buffer(64, MemFlags::kReadWrite, "rc_buf");
  std::vector<std::byte> payload(16);
  EXPECT_THROW(buffer.write(static_cast<std::size_t>(-8), payload), Error);
}

TEST(BufferRangeChecks, QueueEnqueueChecksAtEnqueueTime) {
  Device device("plain", DeviceKind::kFpga,
                DeviceLimits{16 * kMiB, 16 * 1024, 64, 1});
  Context context(device);
  CommandQueue queue(context, QueueMode::kDeferred);
  Buffer& buffer = context.create_buffer_of<double>(8, MemFlags::kReadWrite,
                                                    "q_buf");
  std::vector<double> host(9, 0.0);
  // Deferred mode: the transfer would only run at finish(), but the range
  // error must surface at enqueue time.
  EXPECT_THROW(queue.write<double>(buffer, host), Error);
}

}  // namespace
}  // namespace binopt::ocl
