// Symbolic kernel verifier tests (src/ocl/analyzer/symbolic/).
//
// Three layers:
//   1. Certification — both paper kernels must be PROVED safe for every
//      launch shape the device admits (parametric in `steps` and the
//      work-group size) without executing a single work-item.
//   2. Refutation — a corpus of seeded-bug IRs (the classic OpenCL-port
//      mistakes, mirroring the dynamic analyzer's seeded kernels) must
//      each be refuted with a CONCRETE counterexample: work-item ids plus
//      loop iteration, matching the attribution the dynamic analyzer
//      produces for the same bug.
//   3. Soundness cross-validation — the dynamic analyzer acts as oracle:
//      for randomly sampled launch shapes, a verifier-certified kernel
//      must show zero dynamic hazards when actually executed.
#include <gtest/gtest.h>

#include <cstddef>
#include <random>
#include <vector>

#include "finance/workload.h"
#include "kernels/ir_builders.h"
#include "kernels/kernel_a.h"
#include "kernels/kernel_b.h"
#include "ocl/analyzer/symbolic/verifier.h"
#include "ocl/context.h"
#include "ocl/device.h"
#include "ocl/queue.h"

namespace binopt::ocl {
namespace {

namespace an = analyzer;
namespace sym = analyzer::symbolic;
using an::HazardKind;
using sym::Counterexample;
using sym::VerificationResult;
using sym::verify_kernel_ir;

constexpr std::size_t kMiB = 1024 * 1024;

const Counterexample* find_counterexample(const VerificationResult& result,
                                          HazardKind kind) {
  for (const Counterexample& cx : result.counterexamples) {
    if (cx.kind == kind) return &cx;
  }
  return nullptr;
}

// ---------------------------------------------------------------------------
// Certification of the paper kernels.
// ---------------------------------------------------------------------------

TEST(SymbolicVerifier, KernelAIsCertifiedWithoutExecution) {
  const VerificationResult result = verify_kernel_ir(kernels::kernel_a_ir(1024));
  EXPECT_TRUE(result.certified) << result.to_string();
  EXPECT_TRUE(result.counterexamples.empty());
  EXPECT_TRUE(result.unprovable.empty());
  // All seven access sites get a closed-form bounds proof.
  bool saw_bounds = false;
  for (const sym::PropertyProof& proof : result.proofs) {
    if (proof.property == "bounds") {
      saw_bounds = true;
      EXPECT_EQ(proof.checks, 7u);
    }
  }
  EXPECT_TRUE(saw_bounds);
}

TEST(SymbolicVerifier, KernelBIsCertifiedAcrossGroupSizes) {
  for (const std::size_t steps : {2u, 3u, 8u, 64u, 257u, 1024u}) {
    const VerificationResult result =
        verify_kernel_ir(kernels::kernel_b_ir(steps));
    EXPECT_TRUE(result.certified)
        << "steps=" << steps << "\n" << result.to_string();
    EXPECT_EQ(result.local_size, steps);  // one work-item per leaf pair
  }
}

TEST(SymbolicVerifier, ParametricSweepCoversEveryDeviceAdmissibleShape) {
  // Kernel IV.B requires local size == steps, so the device's work-group
  // ceiling bounds the sweep; every point in the range must certify.
  sym::VerifyOptions options;
  options.max_workgroup_size = 1024;
  const sym::ParametricSweep sweep_b = sym::verify_parametric(
      [](std::size_t steps) { return kernels::kernel_b_ir(steps); }, 2, 1024,
      options);
  EXPECT_EQ(sweep_b.points, 1023u);
  EXPECT_TRUE(sweep_b.all_certified())
      << (sweep_b.failures.empty() ? "" : sweep_b.failures[0].to_string());

  const sym::ParametricSweep sweep_a = sym::verify_parametric(
      [](std::size_t steps) { return kernels::kernel_a_ir(steps); }, 1, 1024,
      options);
  EXPECT_TRUE(sweep_a.all_certified())
      << (sweep_a.failures.empty() ? "" : sweep_a.failures[0].to_string());
}

TEST(SymbolicVerifier, GroupSizePastTheDeviceLimitIsRejectedNotCertified) {
  sym::VerifyOptions options;
  options.max_workgroup_size = 256;
  const VerificationResult result =
      verify_kernel_ir(kernels::kernel_b_ir(512), options);
  EXPECT_FALSE(result.certified);
  ASSERT_FALSE(result.unprovable.empty());
}

// ---------------------------------------------------------------------------
// Seeded-bug corpus. Each IR starts from the correct kernel IV.B (8 steps,
// local row of 9 words, one straight-line + two in-loop barriers) and
// re-introduces one classic porting mistake. The witnesses are golden: the
// verifier must name the exact work-items / iterations / elements.
// ---------------------------------------------------------------------------

constexpr std::size_t kSteps = 8;

// Site indices in kernels::kernel_b_ir's access list.
constexpr std::size_t kTopStoreSite = 3;    // values[n] seed by item n-1
constexpr std::size_t kLoadUpSite = 5;      // loop load of values[k+1]
constexpr std::size_t kLoopStoreSite = 6;   // loop store of values[k]

TEST(SymbolicSeededBugs, OffByOneLoadIsRefutedAtTheExactCorner) {
  fpga::KernelIR ir = kernels::kernel_b_ir(kSteps);
  // values[k+2] instead of values[k+1]: the deepest active item at the
  // first iteration reaches one element past the 9-word row.
  ir.accesses[kLoadUpSite].index.c0 = 2;
  const VerificationResult result = verify_kernel_ir(ir);
  EXPECT_FALSE(result.certified);
  const Counterexample* cx =
      find_counterexample(result, HazardKind::kStaticIndexOutOfBounds);
  ASSERT_NE(cx, nullptr) << result.to_string();
  EXPECT_EQ(cx->site_a, kLoadUpSite);
  EXPECT_EQ(cx->witness.item_a, 7);       // local id steps-1
  EXPECT_EQ(cx->witness.iter_a, 0);       // first (deepest) iteration
  EXPECT_EQ(cx->witness.element, 9);      // row declares 9 words: 0..8
  EXPECT_EQ(cx->resource, "local[0]");
}

TEST(SymbolicSeededBugs, DivergentBarrierIsRefutedWithAWitnessPair) {
  fpga::KernelIR ir = kernels::kernel_b_ir(kSteps);
  // Hoist the second in-loop barrier under the active predicate k <= t —
  // from iteration 1 on, the idle tail items no longer reach it.
  ir.barriers[2].guard =
      fpga::AffineGuard{fpga::AffineGuard::Kind::kNonNegative,
                        fpga::AffineIndexExpr{.c0 = -1, .c_local = -1,
                                              .c_loop = -1, .c_steps = 1}};
  const VerificationResult result = verify_kernel_ir(ir);
  EXPECT_FALSE(result.certified);
  const Counterexample* cx =
      find_counterexample(result, HazardKind::kStaticDivergentBarrier);
  ASSERT_NE(cx, nullptr) << result.to_string();
  EXPECT_EQ(cx->site_a, 2u);
  EXPECT_EQ(cx->witness.iter_a, 1);   // iteration 0 still has everyone active
  EXPECT_EQ(cx->witness.item_a, 0);   // reaches the barrier (k <= t)
  EXPECT_EQ(cx->witness.item_b, 7);   // bypasses it (k > t = 6)
}

TEST(SymbolicSeededBugs, MissingTopSeedIsRefutedAsUninitRead) {
  fpga::KernelIR ir = kernels::kernel_b_ir(kSteps);
  // Drop the `if (k == n-1) values[n] = ...` seed: the first iteration's
  // deepest item reads values[n] before anything wrote it.
  ir.accesses.erase(ir.accesses.begin() + kTopStoreSite);
  const VerificationResult result = verify_kernel_ir(ir);
  EXPECT_FALSE(result.certified);
  const Counterexample* cx =
      find_counterexample(result, HazardKind::kStaticUninitRead);
  ASSERT_NE(cx, nullptr) << result.to_string();
  EXPECT_EQ(cx->witness.item_a, 7);
  EXPECT_EQ(cx->witness.iter_a, 0);
  EXPECT_EQ(cx->witness.element, 8);  // values[n], the never-seeded top
}

TEST(SymbolicSeededBugs, UnguardedSharedStoreIsRefutedAsWriteWriteRace) {
  fpga::KernelIR ir = kernels::kernel_b_ir(kSteps);
  // Every item writes values[0] unconditionally — a textbook reduction
  // race: two items collide on the same element inside one interval.
  ir.accesses[kLoopStoreSite].index = fpga::AffineIndexExpr{};
  ir.accesses[kLoopStoreSite].guard = fpga::AffineGuard{};
  const VerificationResult result = verify_kernel_ir(ir);
  EXPECT_FALSE(result.certified);
  const Counterexample* cx =
      find_counterexample(result, HazardKind::kStaticRaceWriteWrite);
  ASSERT_NE(cx, nullptr) << result.to_string();
  EXPECT_EQ(cx->witness.element, 0);
  EXPECT_NE(cx->witness.item_a, cx->witness.item_b);
}

TEST(SymbolicSeededBugs, MissingSecondBarrierIsRefutedAsLoopCarriedRace) {
  fpga::KernelIR ir = kernels::kernel_b_ir(kSteps);
  // The dynamic analyzer's flagship seeded bug: drop the barrier after
  // the row update. Item k's store to values[k] then shares an interval
  // with item k-1's NEXT-iteration load of values[k].
  ir.barriers.erase(ir.barriers.begin() + 2);
  const VerificationResult result = verify_kernel_ir(ir);
  EXPECT_FALSE(result.certified);
  const Counterexample* cx =
      find_counterexample(result, HazardKind::kStaticRaceReadWrite);
  ASSERT_NE(cx, nullptr) << result.to_string();
  // Golden attribution, identical to the dynamic analyzer's
  // MissingBarrierRaceIsFlaggedWithAttribution: item 1's store and item
  // 0's load of element 1, one loop level apart.
  EXPECT_EQ(cx->site_a, kLoopStoreSite);
  EXPECT_EQ(cx->site_b, kLoadUpSite);
  EXPECT_EQ(cx->witness.item_a, 1);
  EXPECT_EQ(cx->witness.item_b, 0);
  EXPECT_EQ(cx->witness.iter_b, cx->witness.iter_a + 1);
  EXPECT_EQ(cx->witness.element, 1);
}

TEST(SymbolicSeededBugs, UntypedSiteIsUnprovableNeverSilentlyCertified) {
  fpga::KernelIR ir = kernels::kernel_b_ir(kSteps);
  fpga::AccessSite untyped;
  untyped.space = fpga::MemSpace::kLocal;
  untyped.buffer = 0;
  untyped.has_index_bound = true;
  untyped.max_index = 0;
  untyped.has_affine_index = false;  // bound known, expression not
  ir.accesses.push_back(untyped);
  const VerificationResult result = verify_kernel_ir(ir);
  EXPECT_FALSE(result.certified);
  EXPECT_TRUE(result.counterexamples.empty()) << result.to_string();
  ASSERT_FALSE(result.unprovable.empty());
}

// ---------------------------------------------------------------------------
// HazardReport bridge: one combined static+dynamic report vocabulary.
// ---------------------------------------------------------------------------

TEST(SymbolicReport, CounterexamplesLandInTheSharedHazardReport) {
  fpga::KernelIR ir = kernels::kernel_b_ir(kSteps);
  ir.barriers.erase(ir.barriers.begin() + 2);
  const VerificationResult result = verify_kernel_ir(ir);
  an::HazardReport report;
  EXPECT_EQ(sym::report_findings(result, report), 1u);
  EXPECT_EQ(report.count(HazardKind::kStaticRaceReadWrite), 1u);
  EXPECT_EQ(report.error_count(), 1u);
  const an::Hazard hazard = report.hazards()[0];
  EXPECT_EQ(hazard.kernel, "binomial_workgroup_option");
  EXPECT_EQ(hazard.resource, "local[0]");
  EXPECT_EQ(hazard.byte_offset, 8u);  // element 1 of an 8-byte row
  EXPECT_EQ(hazard.first.work_item, 1u);
  EXPECT_TRUE(hazard.first.is_write);
  EXPECT_EQ(hazard.second.work_item, 0u);
}

TEST(SymbolicReport, UnprovableSitesAreDowngradableToWarnings) {
  fpga::KernelIR ir = kernels::kernel_b_ir(kSteps);
  fpga::AccessSite untyped;
  untyped.space = fpga::MemSpace::kLocal;
  untyped.buffer = 0;
  untyped.has_index_bound = true;
  ir.accesses.push_back(untyped);
  const VerificationResult result = verify_kernel_ir(ir);

  an::HazardReport as_errors;
  sym::VerifyOptions strict;
  EXPECT_GE(sym::report_findings(result, as_errors, strict), 1u);
  EXPECT_GE(as_errors.error_count(), 1u);

  an::HazardReport as_warnings;
  sym::VerifyOptions lax;
  lax.unprovable_severity = an::Severity::kWarning;
  EXPECT_GE(sym::report_findings(result, as_warnings, lax), 1u);
  EXPECT_EQ(as_warnings.error_count(), 0u);
  EXPECT_GE(as_warnings.size(), 1u);
}

// ---------------------------------------------------------------------------
// Soundness cross-validation: the dynamic analyzer as oracle. For sampled
// launch shapes, verifier-certified IRs must execute with zero dynamic
// hazards — a certified kernel with a runtime hazard would disprove the
// abstract domains.
// ---------------------------------------------------------------------------

TEST(SymbolicCrossValidation, CertifiedShapesShowNoDynamicHazards) {
  std::mt19937 rng(20260808u);
  std::uniform_int_distribution<std::size_t> steps_dist(4, 48);
  std::uniform_int_distribution<std::uint64_t> seed_dist(1, 1u << 20);
  for (int trial = 0; trial < 4; ++trial) {
    const std::size_t steps = steps_dist(rng);
    ASSERT_TRUE(verify_kernel_ir(kernels::kernel_a_ir(steps)).certified);
    ASSERT_TRUE(verify_kernel_ir(kernels::kernel_b_ir(steps)).certified);

    const auto options = finance::make_random_batch(4, seed_dist(rng));
    Device device("sym-xval", DeviceKind::kFpga,
                  DeviceLimits{16 * kMiB, 16 * 1024, 256, 2});
    an::AnalyzerConfig config;
    config.enabled = true;
    device.set_analyzer(config);

    kernels::KernelAHostProgram a(device, {.steps = steps});
    (void)a.run(options);
    kernels::KernelBHostProgram b(device, {.steps = steps});
    (void)b.run(options);
    EXPECT_TRUE(device.hazard_report().empty())
        << "steps=" << steps << "\n" << device.hazard_report().to_string();
  }
}

}  // namespace
}  // namespace binopt::ocl
