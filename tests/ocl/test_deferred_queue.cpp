// Deferred-queue semantics: non-blocking enqueues execute at finish(),
// in order — the OpenCL behaviour the paper's host exploits to overlap
// memory operations with kernel batches.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "ocl/context.h"
#include "ocl/queue.h"

namespace binopt::ocl {
namespace {

class DeferredQueueTest : public ::testing::Test {
protected:
  DeferredQueueTest()
      : device_("d", DeviceKind::kFpga, DeviceLimits{1 << 20, 4096, 64}),
        context_(device_),
        queue_(context_, QueueMode::kDeferred) {}

  Device device_;
  Context context_;
  CommandQueue queue_;
};

TEST_F(DeferredQueueTest, WritesLandOnlyAtFinish) {
  Buffer& buffer =
      context_.create_buffer_of<double>(4, MemFlags::kReadWrite, "b");
  const std::vector<double> data{1.0, 2.0, 3.0, 4.0};
  const EventId event = queue_.write<double>(buffer, data);
  EXPECT_FALSE(queue_.event(event).completed);
  EXPECT_EQ(queue_.pending_commands(), 1u);
  EXPECT_EQ(device_.stats().host_to_device_bytes, 0u);  // nothing moved

  queue_.finish();
  EXPECT_EQ(queue_.pending_commands(), 0u);
  EXPECT_EQ(device_.stats().host_to_device_bytes, 32u);
  EXPECT_TRUE(queue_.events()[0].completed);
}

TEST_F(DeferredQueueTest, ReadSpanFilledAtFinishNotBefore) {
  Buffer& buffer =
      context_.create_buffer_of<double>(2, MemFlags::kReadWrite, "b");
  const std::vector<double> data{7.0, 9.0};
  queue_.write<double>(buffer, data);
  std::vector<double> out(2, -1.0);
  queue_.read<double>(buffer, out);
  EXPECT_DOUBLE_EQ(out[0], -1.0);  // still untouched
  queue_.finish();
  EXPECT_DOUBLE_EQ(out[0], 7.0);
  EXPECT_DOUBLE_EQ(out[1], 9.0);
}

TEST_F(DeferredQueueTest, CommandsExecuteInEnqueueOrder) {
  Buffer& buffer =
      context_.create_buffer_of<double>(1, MemFlags::kReadWrite, "b");
  const std::vector<double> first{1.0};
  const std::vector<double> second{2.0};
  std::vector<double> out(1, 0.0);
  queue_.write<double>(buffer, first);
  queue_.write<double>(buffer, second);  // must win: enqueued later
  queue_.read<double>(buffer, out);
  queue_.finish();
  EXPECT_DOUBLE_EQ(out[0], 2.0);
}

TEST_F(DeferredQueueTest, KernelRunsAtFinishWithCapturedArgs) {
  Buffer& buffer =
      context_.create_buffer_of<double>(8, MemFlags::kReadWrite, "b");
  Kernel kernel;
  kernel.name = "fill";
  kernel.uses_barriers = false;
  kernel.body = [&buffer](WorkItemCtx& ctx, const KernelArgs& args) {
    auto view = ctx.global<double>(args.buffer(0));
    view.set(ctx.global_id(), args.f64(1));
  };
  KernelArgs args;
  args.set(0, &buffer);
  args.set(1, 5.0);
  queue_.enqueue_ndrange(kernel, args, NDRange{8, 8});
  // Rebinding after enqueue must NOT affect the queued command (args are
  // captured by value, clSetKernelArg semantics).
  args.set(1, 99.0);
  EXPECT_EQ(device_.stats().kernels_enqueued, 0u);

  std::vector<double> out(8, 0.0);
  queue_.read<double>(buffer, out);
  queue_.finish();
  for (double v : out) EXPECT_DOUBLE_EQ(v, 5.0);
}

TEST_F(DeferredQueueTest, ValidationStillHappensAtEnqueueTime) {
  Buffer& buffer =
      context_.create_buffer_of<double>(2, MemFlags::kReadWrite, "b");
  std::vector<double> too_big(3, 0.0);
  EXPECT_THROW(queue_.write<double>(buffer, too_big), PreconditionError);
  EXPECT_EQ(queue_.pending_commands(), 0u);  // rejected, not queued
}

TEST_F(DeferredQueueTest, ClearEventsRefusesWhilePending) {
  Buffer& buffer =
      context_.create_buffer_of<double>(1, MemFlags::kReadWrite, "b");
  const std::vector<double> data{1.0};
  queue_.write<double>(buffer, data);
  EXPECT_THROW(queue_.clear_events(), PreconditionError);
  queue_.finish();
  EXPECT_NO_THROW(queue_.clear_events());
}

// --- Failure path: a throwing deferred command must not poison the queue.

TEST_F(DeferredQueueTest, ThrowingCommandDrainsQueueAndMarksPrefix) {
  Buffer& buffer =
      context_.create_buffer_of<double>(4, MemFlags::kReadWrite, "b");
  const std::vector<double> first{1.0, 2.0, 3.0, 4.0};
  const std::vector<double> second{9.0, 9.0, 9.0, 9.0};

  Kernel bad;
  bad.name = "thrower";
  bad.uses_barriers = false;
  bad.body = [](WorkItemCtx&, const KernelArgs&) {
    throw InvariantError("deferred boom");
  };

  queue_.write<double>(buffer, first);                   // event 0: succeeds
  queue_.enqueue_ndrange(bad, KernelArgs{}, NDRange{4, 4});  // event 1: throws
  queue_.write<double>(buffer, second);                  // event 2: never runs
  EXPECT_EQ(queue_.pending_commands(), 3u);

  EXPECT_THROW(queue_.finish(), InvariantError);

  // Drained, not stuck: nothing pending, and `completed` flags reflect
  // exactly what executed — the prefix before the failure.
  EXPECT_EQ(queue_.pending_commands(), 0u);
  EXPECT_TRUE(queue_.events()[0].completed);
  EXPECT_FALSE(queue_.events()[1].completed);
  EXPECT_FALSE(queue_.events()[2].completed);
  // The write after the failure was dropped, so only `first` moved.
  EXPECT_EQ(device_.stats().host_to_device_bytes, 32u);
}

TEST_F(DeferredQueueTest, NoDoubleExecutionOnNextFinish) {
  Buffer& buffer =
      context_.create_buffer_of<double>(1, MemFlags::kReadWrite, "b");
  const std::vector<double> data{5.0};

  Kernel bad;
  bad.name = "thrower";
  bad.uses_barriers = false;
  bad.body = [](WorkItemCtx&, const KernelArgs&) {
    throw InvariantError("deferred boom");
  };

  queue_.write<double>(buffer, data);
  queue_.enqueue_ndrange(bad, KernelArgs{}, NDRange{1, 1});
  EXPECT_THROW(queue_.finish(), InvariantError);
  const std::uint64_t bytes_after_failure =
      device_.stats().host_to_device_bytes;
  const std::uint64_t kernels_after_failure =
      device_.stats().kernels_enqueued;

  // A second finish() must be a no-op: the failed command must not be
  // retried and the successful write must not execute twice.
  EXPECT_NO_THROW(queue_.finish());
  EXPECT_EQ(device_.stats().host_to_device_bytes, bytes_after_failure);
  EXPECT_EQ(device_.stats().kernels_enqueued, kernels_after_failure);
}

TEST_F(DeferredQueueTest, QueueReusableAfterFailedFinish) {
  Buffer& buffer =
      context_.create_buffer_of<double>(2, MemFlags::kReadWrite, "b");
  const std::vector<double> data{7.0, 8.0};

  Kernel bad;
  bad.name = "thrower";
  bad.uses_barriers = false;
  bad.body = [](WorkItemCtx&, const KernelArgs&) {
    throw InvariantError("deferred boom");
  };
  queue_.enqueue_ndrange(bad, KernelArgs{}, NDRange{2, 2});
  EXPECT_THROW(queue_.finish(), InvariantError);

  // Fresh commands enqueue and run normally on the same queue.
  queue_.write<double>(buffer, data);
  std::vector<double> out(2, 0.0);
  queue_.read<double>(buffer, out);
  queue_.finish();
  EXPECT_DOUBLE_EQ(out[0], 7.0);
  EXPECT_DOUBLE_EQ(out[1], 8.0);
  // And clear_events() works again once nothing is pending.
  EXPECT_NO_THROW(queue_.clear_events());
}

TEST(ImmediateQueue, StillExecutesEagerly) {
  Device device("d", DeviceKind::kCpu, DeviceLimits{4096, 256, 16});
  Context context(device);
  CommandQueue queue(context);  // default immediate
  Buffer& buffer = context.create_buffer_of<double>(1, MemFlags::kReadWrite, "b");
  const std::vector<double> data{3.0};
  const EventId event = queue.write<double>(buffer, data);
  EXPECT_TRUE(queue.event(event).completed);
  EXPECT_EQ(queue.pending_commands(), 0u);
  EXPECT_EQ(device.stats().host_to_device_bytes, 8u);
}

}  // namespace
}  // namespace binopt::ocl
