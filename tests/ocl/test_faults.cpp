// Fault-injection layer (DESIGN.md §2.5): spec parsing and strict
// validation, deterministic firing, typed errors with full attribution,
// the command-queue watchdog, and the disabled-mode bit-identity
// guarantee (a plan that never fires must not change prices, stats, or
// events by a single bit).
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <vector>

#include "ocl/context.h"
#include "ocl/device.h"
#include "ocl/faults/fault_plan.h"
#include "ocl/queue.h"
#include "ocl/trace/tracer.h"

namespace binopt::ocl {
namespace {

using faults::FaultKind;
using faults::FaultPlan;
using faults::parse_fault_plan;

Device make_device(std::size_t compute_units = 1) {
  return Device("test-fpga", DeviceKind::kFpga,
                DeviceLimits{1 << 20, 4096, 64, compute_units});
}

Kernel make_scale_kernel(double scale = 3.0) {
  Kernel kernel;
  kernel.name = "scale";
  kernel.uses_barriers = false;
  kernel.body = [scale](WorkItemCtx& ctx, const KernelArgs& args) {
    auto out = ctx.global<double>(args.buffer(0));
    out.set(ctx.global_id(), static_cast<double>(ctx.global_id()) * scale);
  };
  return kernel;
}

/// EXPECT_THROW plus a substring check on the message — the error-message
/// contract is part of the validation API (satellite: config validation).
template <typename Fn>
void expect_rejected(Fn&& fn, const std::string& needle) {
  try {
    fn();
    FAIL() << "expected PreconditionError containing '" << needle << "'";
  } catch (const PreconditionError& error) {
    EXPECT_NE(std::string(error.what()).find(needle), std::string::npos)
        << "message was: " << error.what();
  }
}

// ---------------------------------------------------------------------------
// Spec parsing: grammar and strict validation.

TEST(FaultPlanParse, ParsesKindsTriggersAndGlobals) {
  const FaultPlan plan = parse_fault_plan(
      "device-lost@2; transient@4x2; stall@8,ms=40; cu-death@6,cu=1;"
      "read-error@3; corrupt-read@~25; write-error@1;"
      "watchdog-ms=10; seed=42");
  ASSERT_EQ(plan.clauses.size(), 7u);
  EXPECT_EQ(plan.clauses[0].kind, FaultKind::kDeviceLost);
  EXPECT_EQ(plan.clauses[0].ordinal, 2u);
  EXPECT_EQ(plan.clauses[1].kind, FaultKind::kTransient);
  EXPECT_EQ(plan.clauses[1].ordinal, 4u);
  EXPECT_EQ(plan.clauses[1].count, 2u);
  EXPECT_EQ(plan.clauses[2].stall_ms, 40u);
  EXPECT_EQ(plan.clauses[3].cu, 1u);
  EXPECT_EQ(plan.clauses[5].percent, 25u);
  EXPECT_EQ(plan.clauses[5].ordinal, 0u);  // probabilistic trigger
  EXPECT_EQ(plan.watchdog_ns, 10u * 1'000'000u);
  EXPECT_EQ(plan.seed, 42u);
  EXPECT_FALSE(plan.empty());
}

TEST(FaultPlanParse, EmptySpecAndStraySemicolonsAreFine) {
  EXPECT_TRUE(parse_fault_plan("").empty());
  EXPECT_TRUE(parse_fault_plan(" ;; ; ").empty());
}

TEST(FaultPlanParse, RejectsUnknownKindNamingTheKnownOnes) {
  expect_rejected([] { (void)parse_fault_plan("device-gone@1"); },
                  "unknown fault kind 'device-gone'");
  expect_rejected([] { (void)parse_fault_plan("device-gone@1"); },
                  "device-lost, transient, stall");
}

TEST(FaultPlanParse, RejectsMalformedAndNonNumericTriggers) {
  expect_rejected([] { (void)parse_fault_plan("transient"); },
                  "expected <kind>@<trigger>");
  expect_rejected([] { (void)parse_fault_plan("transient@abc"); },
                  "must be an unsigned integer");
  expect_rejected([] { (void)parse_fault_plan("transient@-1"); },
                  "must be an unsigned integer");
  expect_rejected([] { (void)parse_fault_plan("transient@1x-2"); },
                  "must be an unsigned integer");
}

TEST(FaultPlanParse, RejectsZeroAndOverflowingOrdinalsAndCounts) {
  expect_rejected([] { (void)parse_fault_plan("transient@0"); },
                  "ordinals are 1-based");
  expect_rejected([] { (void)parse_fault_plan("transient@1x0"); },
                  "repeat count must be >= 1");
  // strtoull overflow (> 2^64) is rejected, not wrapped.
  expect_rejected(
      [] { (void)parse_fault_plan("transient@99999999999999999999999"); },
      "must be an unsigned integer");
  // ordinal + count wrapping around 2^64 is rejected explicitly.
  expect_rejected(
      [] {
        (void)parse_fault_plan("transient@18446744073709551615x2");
      },
      "overflows");
}

TEST(FaultPlanParse, RejectsOutOfRangePercents) {
  expect_rejected([] { (void)parse_fault_plan("transient@~0"); },
                  "must be in [1, 100]");
  expect_rejected([] { (void)parse_fault_plan("transient@~101"); },
                  "must be in [1, 100]");
}

TEST(FaultPlanParse, RejectsBadParameters) {
  expect_rejected([] { (void)parse_fault_plan("stall@1,ms=0"); },
                  "zero-ms stall");
  expect_rejected([] { (void)parse_fault_plan("stall@1,ms=99999999"); },
                  "capped at 60000");
  expect_rejected([] { (void)parse_fault_plan("transient@1,ms=5"); },
                  "'ms=' only applies to stall");
  expect_rejected([] { (void)parse_fault_plan("transient@1,cu=0"); },
                  "'cu=' only applies to cu-death");
  expect_rejected([] { (void)parse_fault_plan("cu-death@1,cu=4096"); },
                  "cu must be <");
  expect_rejected([] { (void)parse_fault_plan("stall@1,bogus=2"); },
                  "unknown parameter 'bogus'");
  expect_rejected([] { (void)parse_fault_plan("stall@1,ms"); },
                  "not key=value");
}

TEST(FaultPlanParse, RejectsBadGlobals) {
  expect_rejected([] { (void)parse_fault_plan("watchdog-ms=0"); },
                  "zero watchdog");
  expect_rejected([] { (void)parse_fault_plan("watchdog-ms=9999999999"); },
                  "capped at 3600000");
  expect_rejected([] { (void)parse_fault_plan("seed=abc"); },
                  "must be an unsigned integer");
}

// ---------------------------------------------------------------------------
// Injector determinism.

TEST(FaultInjector, ProbabilisticFiringIsSeedReproducible) {
  const FaultPlan plan = parse_fault_plan("transient@~30;seed=7");
  faults::FaultInjector a(plan);
  faults::FaultInjector b(plan);
  std::size_t fired = 0;
  for (int i = 0; i < 200; ++i) {
    const auto fa = a.next_launch();
    const auto fb = b.next_launch();
    EXPECT_EQ(fa.transient, fb.transient) << "ordinal " << fa.ordinal;
    fired += fa.transient ? 1 : 0;
  }
  // ~30% of 200; generous bounds keep the test deterministic-by-seed but
  // robust to hash changes.
  EXPECT_GT(fired, 20u);
  EXPECT_LT(fired, 120u);
}

TEST(FaultInjector, DifferentSeedsProduceDifferentSchedules) {
  faults::FaultInjector a(parse_fault_plan("transient@~50;seed=1"));
  faults::FaultInjector b(parse_fault_plan("transient@~50;seed=2"));
  bool diverged = false;
  for (int i = 0; i < 64 && !diverged; ++i) {
    diverged = a.next_launch().transient != b.next_launch().transient;
  }
  EXPECT_TRUE(diverged);
}

// ---------------------------------------------------------------------------
// Launch-domain faults through a real device.

TEST(DeviceFaults, DeviceLostFiresOnTheExactLaunchOrdinal) {
  Device device = make_device();
  device.set_fault_plan(parse_fault_plan("device-lost@3"));
  Context context(device);
  CommandQueue queue(context);
  Buffer& buffer =
      context.create_buffer_of<double>(16, MemFlags::kReadWrite, "out");
  const Kernel kernel = make_scale_kernel();
  KernelArgs args;
  args.set(0, &buffer);
  const NDRange range{16, 8};

  queue.enqueue_ndrange(kernel, args, range);  // launch 1
  queue.enqueue_ndrange(kernel, args, range);  // launch 2
  try {
    queue.enqueue_ndrange(kernel, args, range);  // launch 3: boom
    FAIL() << "expected DeviceLostError";
  } catch (const faults::DeviceLostError& error) {
    EXPECT_EQ(error.kind(), FaultKind::kDeviceLost);
    EXPECT_EQ(error.context().ordinal, 3u);
    EXPECT_EQ(error.context().resource, "scale");
    EXPECT_EQ(error.context().device, "test-fpga");
    // run_command stamped the queue command sequence on the way out.
    EXPECT_EQ(error.context().sequence, 2u);
    EXPECT_NE(std::string(error.what()).find("device lost"),
              std::string::npos);
  }
  // Launch 4 and later are past the clause: the device serves again.
  queue.enqueue_ndrange(kernel, args, range);
  EXPECT_EQ(device.fault_injector()->fired_count(), 1u);
  EXPECT_EQ(device.fault_injector()->fired()[0].kind, FaultKind::kDeviceLost);
}

TEST(DeviceFaults, TransientWindowFiresForCountLaunchesThenHeals) {
  Device device = make_device();
  device.set_fault_plan(parse_fault_plan("transient@2x2"));
  Context context(device);
  CommandQueue queue(context);
  Buffer& buffer =
      context.create_buffer_of<double>(8, MemFlags::kReadWrite, "out");
  const Kernel kernel = make_scale_kernel();
  KernelArgs args;
  args.set(0, &buffer);
  const NDRange range{8, 8};

  queue.enqueue_ndrange(kernel, args, range);  // 1: fine
  EXPECT_THROW(queue.enqueue_ndrange(kernel, args, range),
               faults::TransientDeviceError);  // 2
  EXPECT_THROW(queue.enqueue_ndrange(kernel, args, range),
               faults::TransientDeviceError);  // 3
  queue.enqueue_ndrange(kernel, args, range);  // 4: healed
}

TEST(DeviceFaults, CuDeathCancelsTheRangeAndIsOneShot) {
  for (const std::size_t units : {std::size_t{1}, std::size_t{3}}) {
    Device device = make_device(units);
    device.set_fault_plan(parse_fault_plan("cu-death@1,cu=1"));
    Context context(device);
    CommandQueue queue(context);
    Buffer& buffer =
        context.create_buffer_of<double>(64, MemFlags::kReadWrite, "out");
    const Kernel kernel = make_scale_kernel();
    KernelArgs args;
    args.set(0, &buffer);
    const NDRange range{64, 4};  // 16 groups: exercises the worker pool

    try {
      queue.enqueue_ndrange(kernel, args, range);
      FAIL() << "expected TransientDeviceError (units=" << units << ")";
    } catch (const faults::TransientDeviceError& error) {
      EXPECT_EQ(error.kind(), FaultKind::kCuDeath);
      // cu folded modulo the actual unit count.
      EXPECT_EQ(error.context().cu, units == 1 ? 0u : 1u);
    }
    // One-shot: the retry runs to completion with correct results.
    queue.enqueue_ndrange(kernel, args, range);
    std::vector<double> out(64);
    queue.read<double>(buffer, out);
    for (std::size_t i = 0; i < out.size(); ++i) {
      EXPECT_EQ(out[i], static_cast<double>(i) * 3.0);
    }
  }
}

// ---------------------------------------------------------------------------
// Read/write-domain faults through the command queue.

TEST(QueueFaults, WriteAndReadErrorsCarryBufferAttribution) {
  Device device = make_device();
  device.set_fault_plan(parse_fault_plan("write-error@1;read-error@2"));
  Context context(device);
  CommandQueue queue(context);
  Buffer& buffer =
      context.create_buffer_of<double>(4, MemFlags::kReadWrite, "prices");
  const std::vector<double> data{1, 2, 3, 4};
  std::vector<double> out(4);

  try {
    queue.write<double>(buffer, std::span<const double>(data));
    FAIL() << "expected write fault";
  } catch (const faults::TransientDeviceError& error) {
    EXPECT_EQ(error.kind(), FaultKind::kWriteError);
    EXPECT_EQ(error.context().resource, "prices");
    EXPECT_EQ(error.context().ordinal, 1u);
  }
  queue.write<double>(buffer, std::span<const double>(data));  // write 2: ok
  queue.read<double>(buffer, std::span<double>(out));          // read 1: ok
  EXPECT_EQ(out, data);
  EXPECT_THROW(queue.read<double>(buffer, std::span<double>(out)),
               faults::TransientDeviceError);  // read 2
}

TEST(QueueFaults, CorruptReadFlipsBytesSilently) {
  Device device = make_device();
  device.set_fault_plan(parse_fault_plan("corrupt-read@1"));
  Context context(device);
  CommandQueue queue(context);
  Buffer& buffer =
      context.create_buffer_of<double>(4, MemFlags::kReadWrite, "prices");
  const std::vector<double> data{1, 2, 3, 4};
  std::vector<double> corrupted(4);
  std::vector<double> clean(4);

  queue.write<double>(buffer, std::span<const double>(data));
  queue.read<double>(buffer, std::span<double>(corrupted));  // read 1: lies
  queue.read<double>(buffer, std::span<double>(clean));      // read 2: truth
  EXPECT_EQ(clean, data);
  EXPECT_NE(corrupted, data);                  // silent corruption...
  EXPECT_EQ(device.fault_injector()->fired_count(), 1u);  // ...but logged
  EXPECT_EQ(device.fault_injector()->fired()[0].kind, FaultKind::kCorruptRead);
}

// ---------------------------------------------------------------------------
// Watchdog: a stalled command is declared lost by the queue.

TEST(QueueFaults, WatchdogDeclaresAStalledLaunchLost) {
  Device device = make_device();
  device.set_fault_plan(parse_fault_plan("stall@1,ms=30;watchdog-ms=5"));
  Context context(device);
  CommandQueue queue(context, QueueMode::kDeferred);
  Buffer& buffer =
      context.create_buffer_of<double>(8, MemFlags::kReadWrite, "out");
  const Kernel kernel = make_scale_kernel();
  KernelArgs args;
  args.set(0, &buffer);

  const EventId launch = queue.enqueue_ndrange(kernel, args, NDRange{8, 8});
  try {
    queue.finish();
    FAIL() << "expected the watchdog to declare the device lost";
  } catch (const faults::DeviceLostError& error) {
    EXPECT_EQ(error.kind(), FaultKind::kDeviceLost);
    EXPECT_EQ(error.context().sequence, launch.sequence);
    EXPECT_NE(std::string(error.what()).find("watchdog"), std::string::npos);
  }
  // The timed-out command's event stays incomplete (result untrusted).
  EXPECT_FALSE(queue.event(launch).completed);
  // Both the stall and the watchdog verdict are in the fired log.
  const auto fired = device.fault_injector()->fired();
  ASSERT_EQ(fired.size(), 2u);
  EXPECT_EQ(fired[0].kind, FaultKind::kStall);
  EXPECT_EQ(fired[1].kind, FaultKind::kDeviceLost);
}

// ---------------------------------------------------------------------------
// Tracing: fired faults are instant ('i') events on the device lanes.

TEST(FaultTrace, FiredFaultsEmitInstantEvents) {
  trace::Tracer tracer;
  Device device = make_device();
  device.set_tracer(&tracer);
  device.set_fault_plan(parse_fault_plan("transient@1"));
  Context context(device);
  CommandQueue queue(context);
  Buffer& buffer =
      context.create_buffer_of<double>(8, MemFlags::kReadWrite, "out");
  const Kernel kernel = make_scale_kernel();
  KernelArgs args;
  args.set(0, &buffer);

  EXPECT_THROW(queue.enqueue_ndrange(kernel, args, NDRange{8, 8}),
               faults::TransientDeviceError);
  queue.enqueue_ndrange(kernel, args, NDRange{8, 8});  // healthy launch

  const auto events = tracer.events();
  const auto fault_event =
      std::find_if(events.begin(), events.end(), [](const auto& e) {
        return e.category == "fault";
      });
  ASSERT_NE(fault_event, events.end());
  EXPECT_EQ(fault_event->phase, 'i');
  EXPECT_EQ(fault_event->name, "fault:transient");

  std::ostringstream json;
  tracer.write_json(json);
  EXPECT_NE(json.str().find(R"("ph":"i")"), std::string::npos);
  EXPECT_NE(json.str().find(R"("s":"t")"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Disabled-mode guarantee: an armed-but-never-firing plan (and no plan at
// all) produce bit-identical prices, RuntimeStats, and event streams.

TEST(FaultParity, NeverFiringPlanIsBitIdenticalToNoPlan) {
  const auto run = [](Device& device) {
    Context context(device);
    CommandQueue queue(context);
    Buffer& buffer =
        context.create_buffer_of<double>(64, MemFlags::kReadWrite, "out");
    const Kernel kernel = make_scale_kernel();
    KernelArgs args;
    args.set(0, &buffer);
    queue.enqueue_ndrange(kernel, args, NDRange{64, 8});
    std::vector<double> out(64);
    queue.read<double>(buffer, out);
    return std::make_pair(out, device.stats());
  };

  Device vanilla = make_device(2);
  Device armed = make_device(2);
  // A plan whose clauses can never fire in this run: one launch + one
  // read happen, the triggers sit far beyond both.
  armed.set_fault_plan(
      parse_fault_plan("device-lost@1000;read-error@1000;write-error@1000"));

  const auto [vanilla_out, vanilla_stats] = run(vanilla);
  const auto [armed_out, armed_stats] = run(armed);
  EXPECT_EQ(vanilla_out, armed_out);  // bitwise: EXPECT_EQ on doubles
  EXPECT_EQ(vanilla_stats, armed_stats);
  EXPECT_EQ(armed.fault_injector()->fired_count(), 0u);
}

}  // namespace
}  // namespace binopt::ocl
