// Tests of the host-facing runtime objects: buffers, argument binding,
// contexts, queues, events, platform construction.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <set>
#include <string>
#include <vector>

#include "ocl/buffer.h"
#include "ocl/context.h"
#include "ocl/platform.h"
#include "ocl/queue.h"

namespace binopt::ocl {
namespace {

TEST(Buffer, SizedAndNamed) {
  Buffer buffer(1024, MemFlags::kReadWrite, "scratch");
  EXPECT_EQ(buffer.size_bytes(), 1024u);
  EXPECT_EQ(buffer.count<double>(), 128u);
  EXPECT_EQ(buffer.name(), "scratch");
}

TEST(Buffer, RejectsEmpty) {
  EXPECT_THROW(Buffer(0, MemFlags::kReadWrite, "empty"), PreconditionError);
}

TEST(GlobalSpan, BoundsChecked) {
  Buffer buffer(4 * sizeof(double), MemFlags::kReadWrite, "b");
  RuntimeStats stats;
  GlobalSpan<double> view(buffer, stats);
  view.set(3, 7.0);
  EXPECT_DOUBLE_EQ(view.get(3), 7.0);
  EXPECT_THROW((void)view.get(4), PreconditionError);
  EXPECT_THROW(view.set(4, 0.0), PreconditionError);
}

TEST(GlobalSpan, EnforcesAccessFlags) {
  Buffer ro(64, MemFlags::kReadOnly, "ro");
  Buffer wo(64, MemFlags::kWriteOnly, "wo");
  RuntimeStats stats;
  GlobalSpan<double> ro_view(ro, stats);
  GlobalSpan<double> wo_view(wo, stats);
  EXPECT_THROW(ro_view.set(0, 1.0), PreconditionError);
  EXPECT_THROW((void)wo_view.get(0), PreconditionError);
  EXPECT_NO_THROW((void)ro_view.get(0));
  EXPECT_NO_THROW(wo_view.set(0, 1.0));
}

TEST(KernelArgs, TypedAccess) {
  Buffer buffer(64, MemFlags::kReadWrite, "b");
  KernelArgs args;
  args.set(0, &buffer);
  args.set(1, 2.5);
  args.set(2, static_cast<std::int64_t>(-7));
  args.set(3, static_cast<std::uint64_t>(99));
  EXPECT_EQ(&args.buffer(0), &buffer);
  EXPECT_DOUBLE_EQ(args.f64(1), 2.5);
  EXPECT_EQ(args.i64(2), -7);
  EXPECT_EQ(args.u64(3), 99u);
}

TEST(KernelArgs, TypeMismatchThrows) {
  KernelArgs args;
  args.set(0, 1.0);
  EXPECT_THROW((void)args.buffer(0), PreconditionError);
  EXPECT_THROW((void)args.i64(0), PreconditionError);
}

TEST(KernelArgs, UnboundSlotDetected) {
  KernelArgs args;
  args.set(0, 1.0);
  args.set(2, 2.0);  // slot 1 left unbound
  EXPECT_THROW(args.validate_complete(), PreconditionError);
  EXPECT_THROW((void)args.f64(1), PreconditionError);
  args.set(1, 3.0);
  EXPECT_NO_THROW(args.validate_complete());
}

TEST(Context, TracksGlobalAllocation) {
  Device device("d", DeviceKind::kCpu, DeviceLimits{1024, 256, 16});
  Context context(device);
  (void)context.create_buffer(512, MemFlags::kReadWrite, "a");
  EXPECT_EQ(context.allocated_bytes(), 512u);
  (void)context.create_buffer(512, MemFlags::kReadWrite, "b");
  EXPECT_THROW(
      (void)context.create_buffer(1, MemFlags::kReadWrite, "overflow"),
      PreconditionError);
  context.release_all();
  EXPECT_EQ(context.allocated_bytes(), 0u);
  EXPECT_NO_THROW((void)context.create_buffer(1024, MemFlags::kReadWrite, "c"));
}

TEST(CommandQueue, WriteReadRoundTrip) {
  Device device("d", DeviceKind::kCpu, DeviceLimits{4096, 256, 16});
  Context context(device);
  CommandQueue queue(context);
  Buffer& buffer = context.create_buffer_of<double>(8, MemFlags::kReadWrite, "b");

  const std::vector<double> src{1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0};
  queue.write<double>(buffer, src);
  std::vector<double> dst(8, 0.0);
  queue.read<double>(buffer, dst);
  EXPECT_EQ(src, dst);

  EXPECT_EQ(device.stats().host_to_device_bytes, 64u);
  EXPECT_EQ(device.stats().device_to_host_bytes, 64u);
  EXPECT_EQ(device.stats().host_transfers, 2u);
}

TEST(CommandQueue, OffsetTransfers) {
  Device device("d", DeviceKind::kCpu, DeviceLimits{4096, 256, 16});
  Context context(device);
  CommandQueue queue(context);
  Buffer& buffer = context.create_buffer_of<double>(4, MemFlags::kReadWrite, "b");
  const std::vector<double> two{9.0, 8.0};
  queue.write<double>(buffer, two, /*offset_elems=*/2);
  std::vector<double> out(2, 0.0);
  queue.read<double>(buffer, out, /*offset_elems=*/2);
  EXPECT_EQ(out, two);
}

TEST(CommandQueue, OverrunsRejected) {
  Device device("d", DeviceKind::kCpu, DeviceLimits{4096, 256, 16});
  Context context(device);
  CommandQueue queue(context);
  Buffer& buffer = context.create_buffer_of<double>(4, MemFlags::kReadWrite, "b");
  std::vector<double> five(5, 0.0);
  EXPECT_THROW(queue.write<double>(buffer, five), PreconditionError);
  EXPECT_THROW(queue.read<double>(buffer, five), PreconditionError);
}

TEST(CommandQueue, EventsLogCommands) {
  Device device("d", DeviceKind::kCpu, DeviceLimits{4096, 256, 16});
  Context context(device);
  CommandQueue queue(context);
  Buffer& buffer = context.create_buffer_of<double>(4, MemFlags::kReadWrite, "b");
  const std::vector<double> data(4, 1.0);
  queue.write<double>(buffer, data);

  Kernel kernel;
  kernel.name = "noop";
  kernel.uses_barriers = false;
  kernel.body = [](WorkItemCtx&, const KernelArgs&) {};
  KernelArgs args;
  queue.enqueue_ndrange(kernel, args, NDRange{4, 2});

  ASSERT_EQ(queue.events().size(), 2u);
  EXPECT_EQ(queue.events()[0].kind, CommandKind::kWriteBuffer);
  EXPECT_EQ(queue.events()[0].bytes, 32u);
  EXPECT_EQ(queue.events()[1].kind, CommandKind::kNDRangeKernel);
  EXPECT_EQ(queue.events()[1].work_items, 4u);
  EXPECT_EQ(queue.events()[1].work_groups, 2u);
  EXPECT_LT(queue.events()[0].sequence, queue.events()[1].sequence);
}

TEST(Platform, ReferencePlatformHasThreePaperDevices) {
  auto platform = Platform::make_reference_platform();
  EXPECT_EQ(platform->device_count(), 3u);
  EXPECT_EQ(platform->device_by_kind(DeviceKind::kCpu).kind(), DeviceKind::kCpu);
  EXPECT_EQ(platform->device_by_kind(DeviceKind::kGpu).kind(), DeviceKind::kGpu);
  EXPECT_EQ(platform->device_by_kind(DeviceKind::kFpga).kind(),
            DeviceKind::kFpga);
  // GPU local memory matches the paper's 48 KiB L1-as-local.
  EXPECT_EQ(platform->device_by_kind(DeviceKind::kGpu).limits().local_mem_bytes,
            48u * 1024u);
  // Work-groups of 1024 (N = 1024 trees) must be possible everywhere.
  for (std::size_t i = 0; i < platform->device_count(); ++i) {
    EXPECT_GE(platform->device(i).limits().max_workgroup_size, 1024u);
  }
}

TEST(Platform, MissingKindThrows) {
  Platform platform("empty");
  EXPECT_THROW((void)platform.device_by_kind(DeviceKind::kFpga),
               PreconditionError);
  EXPECT_THROW((void)platform.device(0), PreconditionError);
}

TEST(Device, StatsResettable) {
  Device device("d", DeviceKind::kCpu, DeviceLimits{4096, 256, 16});
  device.stats().host_transfers = 5;
  device.reset_stats();
  EXPECT_EQ(device.stats().host_transfers, 0u);
}

TEST(RuntimeStats, MinusComputesDeltas) {
  RuntimeStats before;
  before.global_load_bytes = 100;
  RuntimeStats after;
  after.global_load_bytes = 250;
  after.kernels_enqueued = 3;
  const RuntimeStats d = after.minus(before);
  EXPECT_EQ(d.global_load_bytes, 150u);
  EXPECT_EQ(d.kernels_enqueued, 3u);
}

TEST(RuntimeStats, XMacroRoundTripCoversEveryCounter) {
  // Set a distinct value on every counter through the visitor, then check
  // that +=, minus(), reset(), and operator== all observe every field.
  // A counter missing from BINOPT_RUNTIME_STATS_COUNTERS would break one
  // of these round-trips.
  RuntimeStats a;
  std::uint64_t next = 1;
  a.for_each_counter([&](const char*, std::uint64_t& v) { v = next++; });
  const std::uint64_t fields = next - 1;
  EXPECT_EQ(fields, 11u) << "update this test when adding a counter";

  RuntimeStats doubled = a;
  doubled += a;
  std::uint64_t expect = 1;
  doubled.for_each_counter([&](const char* name, std::uint64_t& v) {
    EXPECT_EQ(v, 2 * expect) << name;
    ++expect;
  });

  EXPECT_EQ(doubled.minus(a), a);  // 2a - a == a, counter-wise

  RuntimeStats cleared = a;
  cleared.reset();
  EXPECT_EQ(cleared, RuntimeStats{});
  EXPECT_NE(a, RuntimeStats{});
}

TEST(RuntimeStats, CounterNamesUniqueAndPresentInToString) {
  RuntimeStats s;
  s.kernels_enqueued = 1;
  const std::string text = s.to_string();
  std::set<std::string> names;
  s.for_each_counter([&](const char* name, std::uint64_t&) {
    EXPECT_TRUE(names.insert(name).second) << "duplicate counter " << name;
  });
  EXPECT_EQ(names.size(), 11u);
  // Spot-check that the human-readable dump talks about the same counters.
  EXPECT_NE(text.find("kernels=1"), std::string::npos) << text;
}

}  // namespace
}  // namespace binopt::ocl
