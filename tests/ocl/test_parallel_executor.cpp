// Parallel compute-unit scheduler tests: stats parity with serial execution
// for both paper kernel shapes (IV.A barrier-free dataflow, IV.B
// work-group-per-option with barriers), error semantics with
// compute_units > 1 (barrier divergence, mid-kernel exceptions, pool
// reuse), compute-unit resolution (limits / API / env var), and a
// many-group stress kernel that the CI ThreadSanitizer job runs under the
// race detector.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "finance/workload.h"
#include "kernels/kernel_a.h"
#include "kernels/kernel_b.h"
#include "ocl/cu_scheduler.h"
#include "ocl/device.h"

namespace binopt::ocl {
namespace {

constexpr std::size_t kMiB = 1024 * 1024;

Device make_device(std::size_t compute_units,
                   std::size_t max_workgroup_size = 64) {
  return Device("cu-test", DeviceKind::kFpga,
                DeviceLimits{16 * kMiB, 16 * 1024, max_workgroup_size,
                             compute_units});
}

/// RAII override of BINOPT_OCL_COMPUTE_UNITS for one test.
class ScopedComputeUnitsEnv {
public:
  explicit ScopedComputeUnitsEnv(const char* value) {
    ::setenv("BINOPT_OCL_COMPUTE_UNITS", value, /*overwrite=*/1);
  }
  ~ScopedComputeUnitsEnv() { ::unsetenv("BINOPT_OCL_COMPUTE_UNITS"); }
};

TEST(ComputeUnitResolution, LimitsValueIsUsed) {
  Device device = make_device(3);
  EXPECT_EQ(device.compute_units(), 3u);
  EXPECT_EQ(device.limits().compute_units, 3u);
}

TEST(ComputeUnitResolution, ZeroMeansAutomatic) {
  Device device = make_device(0);
  EXPECT_GE(device.compute_units(), 1u);
}

TEST(ComputeUnitResolution, EnvVarBeatsLimits) {
  ScopedComputeUnitsEnv env("2");
  Device device = make_device(8);
  EXPECT_EQ(device.compute_units(), 2u);
}

TEST(ComputeUnitResolution, MalformedEnvVarThrows) {
  ScopedComputeUnitsEnv env("not-a-number");
  EXPECT_THROW(make_device(0), PreconditionError);
}

TEST(ComputeUnitResolution, NegativeEnvVarRejectedNotWrapped) {
  // strtoul would wrap "-1" to ULONG_MAX, sail past the `>= 1` check, and
  // ask the scheduler for ~1.8e19 worker threads. Must throw instead.
  ScopedComputeUnitsEnv env("-1");
  EXPECT_THROW((void)resolve_compute_units(0), PreconditionError);
}

TEST(ComputeUnitResolution, ExplicitSignRejected) {
  ScopedComputeUnitsEnv env("+4");
  EXPECT_THROW((void)resolve_compute_units(0), PreconditionError);
}

TEST(ComputeUnitResolution, OverflowingEnvVarRejected) {
  // 2^64 * 10-ish: strtoul saturates to ULONG_MAX and only reports the
  // overflow through errno == ERANGE, which must not be swallowed.
  ScopedComputeUnitsEnv env("184467440737095516160");
  EXPECT_THROW((void)resolve_compute_units(0), PreconditionError);
}

TEST(ComputeUnitResolution, AboveSaneMaximumRejected) {
  ScopedComputeUnitsEnv env("1000000");
  EXPECT_THROW((void)resolve_compute_units(0), PreconditionError);
}

TEST(ComputeUnitResolution, MaximumItselfAccepted) {
  const std::string max = std::to_string(kMaxComputeUnits);
  ScopedComputeUnitsEnv env(max.c_str());
  EXPECT_EQ(resolve_compute_units(0), kMaxComputeUnits);
}

TEST(ComputeUnitResolution, ApiOverrideBeatsEverything) {
  ScopedComputeUnitsEnv env("2");
  Device device = make_device(8);
  device.set_compute_units(5);
  EXPECT_EQ(device.compute_units(), 5u);
  EXPECT_THROW(device.set_compute_units(0), PreconditionError);
}

// --- Stats parity: parallel totals must be bit-identical to serial -------

TEST(ParallelExecutor, KernelBShapeStatsMatchSerialExactly) {
  // Kernel IV.B: one work-group per option, work-item per tree row,
  // local-memory row + barriers — the paper's optimized kernel.
  const auto batch = finance::make_random_batch(24, 7);
  const std::size_t steps = 32;

  Device serial = make_device(1);
  Device parallel = make_device(4);

  kernels::KernelBHostProgram host_serial(serial, {.steps = steps});
  kernels::KernelBHostProgram host_parallel(parallel, {.steps = steps});

  const auto res_serial = host_serial.run(batch);
  const auto res_parallel = host_parallel.run(batch);

  EXPECT_EQ(res_serial.prices, res_parallel.prices);  // bitwise-equal doubles
  EXPECT_EQ(res_serial.stats, res_parallel.stats);
  EXPECT_EQ(res_parallel.stats.work_groups_executed, batch.size());
  EXPECT_GT(res_parallel.stats.barriers_executed, 0u);
}

TEST(ParallelExecutor, KernelAShapeStatsMatchSerialExactly) {
  // Kernel IV.A: barrier-free dataflow, one work-item per tree node,
  // ping-pong global buffers, host-driven batches.
  const auto batch = finance::make_random_batch(6, 11);
  const std::size_t steps = 24;

  Device serial = make_device(1, /*max_workgroup_size=*/256);
  Device parallel = make_device(4, /*max_workgroup_size=*/256);

  kernels::KernelAHostProgram host_serial(serial, {.steps = steps});
  kernels::KernelAHostProgram host_parallel(parallel, {.steps = steps});

  const auto res_serial = host_serial.run(batch);
  const auto res_parallel = host_parallel.run(batch);

  EXPECT_EQ(res_serial.prices, res_parallel.prices);
  EXPECT_EQ(res_serial.stats, res_parallel.stats);
  EXPECT_GT(res_parallel.stats.global_load_bytes, 0u);
}

TEST(ParallelExecutor, SyntheticBarrierKernelParityAcrossUnitCounts) {
  // Same NDRange on 1, 2, 3, 8 compute units: identical totals each time.
  Kernel kernel;
  kernel.name = "parity";
  kernel.body = [](WorkItemCtx& ctx, const KernelArgs&) {
    auto row = ctx.local_array<double>(ctx.local_size());
    row.set(ctx.local_id(), static_cast<double>(ctx.global_id()));
    ctx.barrier();
    (void)row.get((ctx.local_id() + 1) % ctx.local_size());
  };
  KernelArgs args;
  const NDRange range{512, 8};

  RuntimeStats baseline;
  {
    Device device = make_device(1);
    device.execute(kernel, args, range);
    baseline = device.stats();
  }
  for (std::size_t units : {2u, 3u, 8u}) {
    Device device = make_device(units);
    device.execute(kernel, args, range);
    EXPECT_EQ(device.stats(), baseline) << "units=" << units;
  }
  EXPECT_EQ(baseline.work_items_executed, 512u);
  EXPECT_EQ(baseline.work_groups_executed, 64u);
  EXPECT_EQ(baseline.barriers_executed, 512u);
}

// --- Error semantics with compute_units > 1 ------------------------------

TEST(ParallelExecutor, BarrierDivergenceDetectedAndPoolStaysReusable) {
  Device device = make_device(4);
  Kernel divergent;
  divergent.name = "divergent";
  divergent.body = [](WorkItemCtx& ctx, const KernelArgs&) {
    if (ctx.local_id() == 0) ctx.barrier();  // only one item synchronises
  };
  KernelArgs args;
  EXPECT_THROW(device.execute(divergent, args, NDRange{256, 4}),
               PreconditionError);

  // Same device, same worker pool: a correct kernel must run cleanly.
  Kernel good;
  good.name = "fine";
  good.body = [](WorkItemCtx& ctx, const KernelArgs&) { ctx.barrier(); };
  device.reset_stats();
  EXPECT_NO_THROW(device.execute(good, args, NDRange{256, 4}));
  EXPECT_EQ(device.stats().work_groups_executed, 64u);
  EXPECT_EQ(device.stats().barriers_executed, 256u);
}

TEST(ParallelExecutor, MidKernelExceptionCancelsAndRethrowsOnEnqueuer) {
  Device device = make_device(4);
  Kernel bad;
  bad.name = "dies_mid_phase";
  bad.body = [](WorkItemCtx& ctx, const KernelArgs&) {
    ctx.barrier();
    if (ctx.group_id() == 5 && ctx.local_id() == 3) {
      throw PreconditionError("boom in group 5");
    }
    ctx.barrier();
  };
  KernelArgs args;
  EXPECT_THROW(device.execute(bad, args, NDRange{8 * 64, 8}),
               PreconditionError);

  // Remaining chunks were cancelled, every worker drained its fibers, and
  // the pool is reusable for both fiber and fast-path kernels.
  Kernel good;
  good.name = "fine";
  good.body = [](WorkItemCtx& ctx, const KernelArgs&) { ctx.barrier(); };
  device.reset_stats();
  EXPECT_NO_THROW(device.execute(good, args, NDRange{8 * 64, 8}));
  EXPECT_EQ(device.stats().work_groups_executed, 64u);
}

TEST(ParallelExecutor, ExceptionInBarrierFreeKernelAlsoRethrown) {
  Device device = make_device(4);
  Kernel bad;
  bad.name = "fast_path_thrower";
  bad.uses_barriers = false;
  bad.body = [](WorkItemCtx& ctx, const KernelArgs&) {
    if (ctx.group_id() == 17) throw InvariantError("fast-path boom");
  };
  KernelArgs args;
  EXPECT_THROW(device.execute(bad, args, NDRange{64 * 4, 4}), InvariantError);
}

// --- Stress (run under -fsanitize=thread in CI) --------------------------

TEST(ParallelExecutorStress, ManyGroupsManyUnitsRaceFree) {
  Device device = make_device(4, /*max_workgroup_size=*/16);
  const std::size_t groups = 2000;
  const std::size_t local = 16;
  std::vector<double> out(groups * local, -1.0);
  Kernel kernel;
  kernel.name = "stress";
  kernel.body = [&out](WorkItemCtx& ctx, const KernelArgs&) {
    auto row = ctx.local_array<double>(ctx.local_size());
    row.set(ctx.local_id(), static_cast<double>(ctx.local_id()));
    ctx.barrier();
    const double neighbour = row.get((ctx.local_id() + 1) % ctx.local_size());
    // Distinct global slot per work-item: the only cross-thread writes are
    // to disjoint addresses, exactly like kernel IV.B's result buffer.
    out[ctx.global_id()] =
        neighbour + 1000.0 * static_cast<double>(ctx.group_id());
  };
  KernelArgs args;
  device.execute(kernel, args, NDRange{groups * local, local});

  for (std::size_t g = 0; g < groups; ++g) {
    for (std::size_t i = 0; i < local; ++i) {
      const double expected = static_cast<double>((i + 1) % local) +
                              1000.0 * static_cast<double>(g);
      ASSERT_DOUBLE_EQ(out[g * local + i], expected)
          << "group " << g << " item " << i;
    }
  }
  EXPECT_EQ(device.stats().work_groups_executed, groups);
  EXPECT_EQ(device.stats().work_items_executed, groups * local);
  EXPECT_EQ(device.stats().barriers_executed, groups * local);
}

TEST(ParallelExecutorStress, RepeatedNDRangesReuseTheWorkerPool) {
  Device device = make_device(3, /*max_workgroup_size=*/8);
  Kernel kernel;
  kernel.name = "repeat";
  kernel.body = [](WorkItemCtx& ctx, const KernelArgs&) { ctx.barrier(); };
  KernelArgs args;
  for (int round = 0; round < 50; ++round) {
    device.execute(kernel, args, NDRange{40 * 8, 8});
  }
  EXPECT_EQ(device.stats().kernels_enqueued, 50u);
  EXPECT_EQ(device.stats().work_groups_executed, 50u * 40u);
}

}  // namespace
}  // namespace binopt::ocl
