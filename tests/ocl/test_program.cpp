#include "ocl/program.h"

#include <gtest/gtest.h>

namespace binopt::ocl {
namespace {

TEST(BuildOptions, ParsesAlteraStyleDefines) {
  const auto opts = parse_build_options(
      "-DNUM_SIMD_WORK_ITEMS=4 -DNUM_COMPUTE_UNITS=3 -DUNROLL_FACTOR=2");
  EXPECT_EQ(opts.simd_width, 4u);
  EXPECT_EQ(opts.num_compute_units, 3u);
  EXPECT_EQ(opts.unroll_factor, 2u);
}

TEST(BuildOptions, MissingOptionsDefaultToOne) {
  const auto opts = parse_build_options("");
  EXPECT_EQ(opts.simd_width, 1u);
  EXPECT_EQ(opts.num_compute_units, 1u);
  EXPECT_EQ(opts.unroll_factor, 1u);
}

TEST(BuildOptions, IgnoresUnknownTokens) {
  const auto opts = parse_build_options(
      "-cl-fast-relaxed-math -DFOO=9 -I/inc -DNUM_SIMD_WORK_ITEMS=2");
  EXPECT_EQ(opts.simd_width, 2u);
}

TEST(BuildOptions, TolerantOfExtraWhitespace) {
  const auto opts =
      parse_build_options("   -DUNROLL_FACTOR=8    -DNUM_SIMD_WORK_ITEMS=2 ");
  EXPECT_EQ(opts.unroll_factor, 8u);
  EXPECT_EQ(opts.simd_width, 2u);
}

TEST(BuildOptions, MalformedValuesThrow) {
  EXPECT_THROW((void)parse_build_options("-DNUM_SIMD_WORK_ITEMS=abc"),
               PreconditionError);
  EXPECT_THROW((void)parse_build_options("-DNUM_SIMD_WORK_ITEMS=0"),
               PreconditionError);
  EXPECT_THROW((void)parse_build_options("-DNUM_SIMD_WORK_ITEMS=3"),
               PreconditionError);  // not a power of two
}

TEST(BuildOptions, RenderRoundTrips) {
  fpga::CompileOptions opts{4, 3, 2};
  const auto parsed = parse_build_options(render_build_options(opts));
  EXPECT_EQ(parsed.simd_width, 4u);
  EXPECT_EQ(parsed.num_compute_units, 3u);
  EXPECT_EQ(parsed.unroll_factor, 2u);
}

TEST(Program, RegistersAndLooksUpKernels) {
  Program program("-DNUM_SIMD_WORK_ITEMS=2");
  Kernel k;
  k.name = "my_kernel";
  k.body = [](WorkItemCtx&, const KernelArgs&) {};
  program.add_kernel(std::move(k));
  EXPECT_TRUE(program.has_kernel("my_kernel"));
  EXPECT_FALSE(program.has_kernel("other"));
  EXPECT_EQ(program.kernel("my_kernel").name, "my_kernel");
  EXPECT_EQ(program.kernel_count(), 1u);
  EXPECT_EQ(program.compile_options().simd_width, 2u);
}

TEST(Program, RejectsDuplicatesAndAnonymousKernels) {
  Program program;
  Kernel k;
  k.name = "dup";
  k.body = [](WorkItemCtx&, const KernelArgs&) {};
  program.add_kernel(k);
  EXPECT_THROW(program.add_kernel(k), PreconditionError);
  Kernel anon;
  anon.body = [](WorkItemCtx&, const KernelArgs&) {};
  EXPECT_THROW(program.add_kernel(anon), PreconditionError);
  EXPECT_THROW((void)program.kernel("missing"), PreconditionError);
}

}  // namespace
}  // namespace binopt::ocl
