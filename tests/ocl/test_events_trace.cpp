// Event handles, the bounded event log, profiling timestamps, and the
// tracing layer (DESIGN.md §2.4).
//
// The two regression suites at the top pin the event-plumbing bugfixes:
// enqueue_* used to return an Event& into a std::vector that the next
// enqueue could reallocate (a dangling reference — the EventHandles tests
// run under ASan in CI), and nothing ever bounded the log, so a
// long-running service leaked memory linearly in requests.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "ocl/context.h"
#include "ocl/device.h"
#include "ocl/queue.h"
#include "ocl/trace/tracer.h"

namespace binopt::ocl {
namespace {

Device make_device(std::size_t compute_units = 1) {
  return Device("d", DeviceKind::kCpu,
                DeviceLimits{1 << 20, 4096, 64, compute_units});
}

/// A kernel that writes global_id * scale into its output buffer — cheap,
/// deterministic, and its result detects any execution divergence.
Kernel make_scale_kernel(double scale = 1.0) {
  Kernel kernel;
  kernel.name = "scale";
  kernel.uses_barriers = false;
  kernel.body = [scale](WorkItemCtx& ctx, const KernelArgs& args) {
    auto out = ctx.global<double>(args.buffer(0));
    out.set(ctx.global_id(), static_cast<double>(ctx.global_id()) * scale);
  };
  return kernel;
}

// ---------------------------------------------------------------------------
// Bugfix 1: handles must survive log reallocation and retirement.

TEST(EventHandles, SurviveThousandsOfEnqueues) {
  Device device = make_device();
  Context context(device);
  CommandQueue queue(context);
  Buffer& buffer =
      context.create_buffer_of<double>(8, MemFlags::kReadWrite, "b");
  const std::vector<double> data(8, 1.0);

  // Hold the first command's handle across >1000 further enqueues. With
  // the old Event&-into-vector API this dereferenced freed memory as soon
  // as the vector grew (caught by ASan); a handle stays valid for as long
  // as the event is retained.
  const EventId first = queue.write<double>(buffer, data);
  for (int i = 0; i < 1500; ++i) queue.write<double>(buffer, data);

  ASSERT_TRUE(queue.has_event(first));
  const Event& event = queue.event(first);
  EXPECT_EQ(event.sequence, 0u);
  EXPECT_EQ(event.kind, CommandKind::kWriteBuffer);
  EXPECT_EQ(event.label, "b");
  EXPECT_EQ(event.bytes, 64u);
  EXPECT_TRUE(event.completed);
  EXPECT_EQ(queue.events_recorded(), 1501u);
}

TEST(EventHandles, RetiredHandleReportsRetirementInsteadOfDangling) {
  Device device = make_device();
  Context context(device);
  CommandQueue queue(context);
  queue.set_event_log_capacity(16);
  Buffer& buffer =
      context.create_buffer_of<double>(1, MemFlags::kReadWrite, "b");
  const std::vector<double> data(1, 1.0);

  const EventId first = queue.write<double>(buffer, data);
  for (int i = 0; i < 100; ++i) queue.write<double>(buffer, data);

  EXPECT_FALSE(queue.has_event(first));
  EXPECT_THROW((void)queue.event(first), PreconditionError);
  // A handle never issued by this queue is rejected too.
  EXPECT_THROW((void)queue.event(EventId{999999}), PreconditionError);
  // Recent handles still resolve.
  const EventId last = queue.write<double>(buffer, data);
  EXPECT_TRUE(queue.has_event(last));
  EXPECT_TRUE(queue.event(last).completed);
}

// ---------------------------------------------------------------------------
// Bugfix 2: the log is a bounded ring; long sessions stay flat.

TEST(EventLog, BoundedAcrossBatches) {
  Device device = make_device();
  Context context(device);
  CommandQueue queue(context);
  queue.set_event_log_capacity(64);
  Buffer& buffer =
      context.create_buffer_of<double>(4, MemFlags::kReadWrite, "b");
  const std::vector<double> data(4, 2.0);
  std::vector<double> out(4, 0.0);

  // 100 "batches" of 10 commands each, the service's reuse pattern.
  for (int batch = 0; batch < 100; ++batch) {
    for (int i = 0; i < 5; ++i) {
      queue.write<double>(buffer, data);
      queue.read<double>(buffer, out);
    }
  }
  EXPECT_LE(queue.events().size(), 64u);
  EXPECT_EQ(queue.events_recorded(), 1000u);
  EXPECT_EQ(queue.events_retired(),
            queue.events_recorded() - queue.events().size());
  // Aggregate traffic counters survive retirement untouched.
  EXPECT_EQ(device.stats().host_transfers, 1000u);
}

TEST(EventLog, ShrinkingCapacityRetiresImmediately) {
  Device device = make_device();
  Context context(device);
  CommandQueue queue(context);
  Buffer& buffer =
      context.create_buffer_of<double>(1, MemFlags::kReadWrite, "b");
  const std::vector<double> data(1, 1.0);
  for (int i = 0; i < 32; ++i) queue.write<double>(buffer, data);
  EXPECT_EQ(queue.events().size(), 32u);
  queue.set_event_log_capacity(8);
  EXPECT_EQ(queue.events().size(), 8u);
  EXPECT_EQ(queue.events().front().sequence, 24u);
  EXPECT_THROW(queue.set_event_log_capacity(0), PreconditionError);
}

TEST(EventLog, RetirementNeverDropsPendingCommands) {
  Device device = make_device();
  Context context(device);
  CommandQueue queue(context, QueueMode::kDeferred);
  queue.set_event_log_capacity(4);
  Buffer& buffer =
      context.create_buffer_of<double>(1, MemFlags::kReadWrite, "b");
  const std::vector<double> data(1, 3.0);

  // 10 deferred commands: all pending, so none may retire yet even though
  // the log is over capacity.
  std::vector<EventId> ids;
  for (int i = 0; i < 10; ++i) ids.push_back(queue.write<double>(buffer, data));
  EXPECT_EQ(queue.events().size(), 10u);
  EXPECT_EQ(queue.pending_commands(), 10u);

  queue.finish();
  // Now everything has executed; the ring trims back to capacity.
  EXPECT_EQ(queue.events().size(), 4u);
  EXPECT_EQ(queue.pending_commands(), 0u);
  for (const EventId id : ids) {
    if (queue.has_event(id)) EXPECT_TRUE(queue.event(id).completed);
  }
  EXPECT_TRUE(queue.has_event(ids.back()));
}

// ---------------------------------------------------------------------------
// Profiling timestamps (clGetEventProfilingInfo semantics).

TEST(Profiling, OffByDefaultLeavesZeros) {
  Device device = make_device();
  Context context(device);
  CommandQueue queue(context);
  Buffer& buffer =
      context.create_buffer_of<double>(1, MemFlags::kReadWrite, "b");
  const std::vector<double> data(1, 1.0);
  const EventId id = queue.write<double>(buffer, data);
  const EventProfile& p = queue.event(id).profile;
  EXPECT_EQ(p.queued_ns, 0u);
  EXPECT_EQ(p.submitted_ns, 0u);
  EXPECT_EQ(p.start_ns, 0u);
  EXPECT_EQ(p.end_ns, 0u);
}

TEST(Profiling, ImmediateModeStampsOrderedTimestamps) {
  Device device = make_device();
  device.set_profiling(true);
  Context context(device);
  CommandQueue queue(context);
  Buffer& buffer =
      context.create_buffer_of<double>(1, MemFlags::kReadWrite, "b");
  const std::vector<double> data(1, 1.0);
  const EventId id = queue.write<double>(buffer, data);
  const EventProfile& p = queue.event(id).profile;
  EXPECT_GT(p.queued_ns, 0u);
  EXPECT_EQ(p.submitted_ns, p.queued_ns);  // immediate: submit == queue
  EXPECT_GE(p.start_ns, p.submitted_ns);
  EXPECT_GE(p.end_ns, p.start_ns);
}

TEST(Profiling, DeferredModeSubmitsAtFinish) {
  Device device = make_device();
  device.set_profiling(true);
  Context context(device);
  CommandQueue queue(context, QueueMode::kDeferred);
  Buffer& buffer =
      context.create_buffer_of<double>(1, MemFlags::kReadWrite, "b");
  const std::vector<double> data(1, 1.0);
  const EventId id = queue.write<double>(buffer, data);
  {
    const EventProfile& p = queue.event(id).profile;
    EXPECT_GT(p.queued_ns, 0u);
    EXPECT_EQ(p.submitted_ns, 0u);  // not handed to the device yet
    EXPECT_EQ(p.end_ns, 0u);
  }
  queue.finish();
  const EventProfile& p = queue.event(id).profile;
  EXPECT_GE(p.submitted_ns, p.queued_ns);
  EXPECT_GE(p.start_ns, p.submitted_ns);
  EXPECT_GE(p.end_ns, p.start_ns);
}

// ---------------------------------------------------------------------------
// Tracer: lanes, determinism, parity, and the off == bit-identical claim.

/// Runs the scale kernel on `units` compute units with `groups` groups,
/// returns the read-back result.
std::vector<double> run_traced_workload(Device& device, std::size_t groups) {
  Context context(device);
  CommandQueue queue(context);
  const std::size_t n = groups * 8;
  Buffer& buffer =
      context.create_buffer_of<double>(n, MemFlags::kReadWrite, "out");
  const Kernel kernel = make_scale_kernel(2.0);
  KernelArgs args;
  args.set(0, &buffer);
  queue.enqueue_ndrange(kernel, args, NDRange{n, 8});
  std::vector<double> out(n, 0.0);
  queue.read<double>(buffer, out);
  return out;
}

TEST(Tracer, CapturesQueueAndComputeUnitLanes) {
  trace::Tracer tracer;
  Device device = make_device(/*compute_units=*/4);
  device.set_tracer(&tracer);
  EXPECT_TRUE(device.profiling());  // tracer arms profiling
  (void)run_traced_workload(device, /*groups=*/16);

  const std::vector<trace::TraceEvent> events = tracer.events();
  std::size_t queue_cmds = 0;
  std::size_t cu_spans = 0;
  for (const trace::TraceEvent& e : events) {
    EXPECT_EQ(e.pid, device.trace_pid());
    if (e.category == "queue") {
      EXPECT_EQ(e.tid, 0u);
      ++queue_cmds;
    } else if (e.category == "cu") {
      EXPECT_GE(e.tid, 1u);
      EXPECT_LE(e.tid, 4u);
      EXPECT_EQ(e.name, "scale");
      ++cu_spans;
    }
  }
  EXPECT_EQ(queue_cmds, 2u);  // the ndrange + the read
  EXPECT_EQ(cu_spans, 16u);   // one span per work-group
  // Every group id 0..15 appears exactly once across the lanes.
  std::map<std::string, int> group_args;
  for (const trace::TraceEvent& e : events) {
    if (e.category != "cu") continue;
    ASSERT_EQ(e.args.size(), 1u);
    EXPECT_EQ(e.args[0].first, "group");
    ++group_args[e.args[0].second];
  }
  EXPECT_EQ(group_args.size(), 16u);
  for (const auto& [group, count] : group_args) EXPECT_EQ(count, 1) << group;
}

TEST(Tracer, SerialTraceIsStructurallyDeterministic) {
  // Two runs of the same workload on single-CU devices produce the same
  // event sequence (names, categories, lanes, args) — only timestamps
  // differ. CU > 1 cannot promise ordering (group->unit assignment is a
  // scheduling race by design), so the deterministic claim is serial.
  const auto structure = [](const trace::Tracer& tracer) {
    std::vector<std::string> s;
    for (const trace::TraceEvent& e : tracer.events()) {
      std::string row = e.category + "/" + e.name + "/tid=" +
                        std::to_string(e.tid);
      for (const auto& [k, v] : e.args) row += "/" + k + "=" + v;
      s.push_back(std::move(row));
    }
    return s;
  };

  trace::Tracer first_tracer;
  Device first_device = make_device(1);
  first_device.set_tracer(&first_tracer);
  const std::vector<double> first_out =
      run_traced_workload(first_device, /*groups=*/8);

  trace::Tracer second_tracer;
  Device second_device = make_device(1);
  second_device.set_tracer(&second_tracer);
  const std::vector<double> second_out =
      run_traced_workload(second_device, /*groups=*/8);

  EXPECT_EQ(structure(first_tracer), structure(second_tracer));
  EXPECT_EQ(first_out, second_out);
}

TEST(Tracer, MultiUnitTraceMatchesSerialAsAMultiset) {
  const auto multiset = [](const trace::Tracer& tracer) {
    std::vector<std::string> s;
    for (const trace::TraceEvent& e : tracer.events()) {
      std::string row = e.category + "/" + e.name;
      for (const auto& [k, v] : e.args) row += "/" + k + "=" + v;
      s.push_back(std::move(row));
    }
    std::sort(s.begin(), s.end());
    return s;
  };

  trace::Tracer serial_tracer;
  Device serial_device = make_device(1);
  serial_device.set_tracer(&serial_tracer);
  (void)run_traced_workload(serial_device, /*groups=*/12);

  trace::Tracer parallel_tracer;
  Device parallel_device = make_device(3);
  parallel_device.set_tracer(&parallel_tracer);
  (void)run_traced_workload(parallel_device, /*groups=*/12);

  // Same commands, same groups — only the (cu) lane assignment may differ,
  // and that lives in tid, which the multiset deliberately ignores.
  EXPECT_EQ(multiset(serial_tracer), multiset(parallel_tracer));
}

TEST(Tracer, TracingChangesNeitherResultsNorStats) {
  // The acceptance bar for "one-branch disabled cost": prices and
  // RuntimeStats must be bit-identical with the tracer on and off, for
  // both serial and parallel schedules.
  for (const std::size_t units : {std::size_t{1}, std::size_t{4}}) {
    Device plain_device = make_device(units);
    const std::vector<double> plain = run_traced_workload(plain_device, 16);

    trace::Tracer tracer;
    Device traced_device = make_device(units);
    traced_device.set_tracer(&tracer);
    const std::vector<double> traced = run_traced_workload(traced_device, 16);

    EXPECT_EQ(plain, traced) << units << " unit(s)";
    EXPECT_EQ(plain_device.stats(), traced_device.stats())
        << units << " unit(s)";
    EXPECT_GT(tracer.event_count(), 0u);
  }
}

TEST(Tracer, WritesChromeTraceJson) {
  trace::Tracer tracer;
  Device device = make_device(2);
  device.set_tracer(&tracer);
  (void)run_traced_workload(device, /*groups=*/4);

  std::ostringstream os;
  tracer.write_json(os);
  const std::string json = os.str();
  EXPECT_EQ(json.front(), '{');
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);
  EXPECT_NE(json.find("\"process_name\""), std::string::npos);
  EXPECT_NE(json.find("\"device d\""), std::string::npos);
  EXPECT_NE(json.find("\"cu 0\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  // No literal newlines inside any JSON string (labels are escaped).
  EXPECT_EQ(json.back(), '\n');
}

TEST(Tracer, SchedulerRebuildKeepsTracerAttached) {
  trace::Tracer tracer;
  Device device = make_device(1);
  device.set_tracer(&tracer);
  device.set_compute_units(3);  // rebuilds the scheduler
  (void)run_traced_workload(device, /*groups=*/6);
  std::size_t cu_spans = 0;
  for (const trace::TraceEvent& e : tracer.events()) {
    if (e.category == "cu") ++cu_spans;
  }
  EXPECT_EQ(cu_spans, 6u);
}

}  // namespace
}  // namespace binopt::ocl
