// Stress and scale tests for the execution engine: paper-scale work-group
// widths (1024 work-items, the N = 1024 tree row), deep barrier loops,
// fiber-pool reuse across thousands of groups, and exception hygiene when
// a work-item dies mid-barrier-phase.
#include <gtest/gtest.h>

#include <vector>

#include "ocl/platform.h"
#include "ocl/workgroup_executor.h"

namespace binopt::ocl {
namespace {

TEST(ExecutorStress, PaperScaleWorkGroupOf1024WithBarriers) {
  WorkGroupExecutor executor(32 * 1024, 1024);
  RuntimeStats stats;
  // Rotating neighbour sum across 8 barrier phases at full width.
  std::vector<double> result(1024, 0.0);
  Kernel kernel;
  kernel.name = "wide_group";
  kernel.body = [&](WorkItemCtx& ctx, const KernelArgs&) {
    const std::size_t n = ctx.local_size();
    auto row = ctx.local_array<double>(n);
    double acc = static_cast<double>(ctx.local_id());
    for (int phase = 0; phase < 8; ++phase) {
      row.set(ctx.local_id(), acc);
      ctx.barrier();
      acc = row.get((ctx.local_id() + 1) % n);
      ctx.barrier();
    }
    result[ctx.local_id()] = acc;
  };
  KernelArgs args;
  executor.execute(kernel, args, NDRange{1024, 1024}, stats);
  // After 8 rotations each item holds the id 8 positions ahead.
  for (std::size_t i = 0; i < 1024; ++i) {
    EXPECT_DOUBLE_EQ(result[i], static_cast<double>((i + 8) % 1024));
  }
  EXPECT_EQ(stats.barriers_executed, 1024u * 16u);
}

TEST(ExecutorStress, ThousandsOfGroupsReuseTheFiberPool) {
  WorkGroupExecutor executor(16 * 1024, 64);
  RuntimeStats stats;
  std::size_t count = 0;
  Kernel kernel;
  kernel.name = "many_groups";
  kernel.body = [&](WorkItemCtx& ctx, const KernelArgs&) {
    ctx.barrier();  // force the fiber path
    if (ctx.local_id() == 0) ++count;
  };
  KernelArgs args;
  executor.execute(kernel, args, NDRange{4000 * 8, 8}, stats);
  EXPECT_EQ(count, 4000u);
  EXPECT_EQ(stats.work_groups_executed, 4000u);
}

TEST(ExecutorStress, DeepBarrierLoopSurvives) {
  WorkGroupExecutor executor(16 * 1024, 16);
  RuntimeStats stats;
  Kernel kernel;
  kernel.name = "deep_loop";
  kernel.body = [&](WorkItemCtx& ctx, const KernelArgs&) {
    for (int i = 0; i < 2000; ++i) ctx.barrier();
  };
  KernelArgs args;
  executor.execute(kernel, args, NDRange{16, 16}, stats);
  EXPECT_EQ(stats.barriers_executed, 16u * 2000u);
}

TEST(ExecutorStress, ExceptionMidPhaseLeavesTheSameExecutorReusable) {
  WorkGroupExecutor executor(16 * 1024, 8);
  RuntimeStats stats;
  Kernel bad;
  bad.name = "dies_after_barrier";
  bad.body = [](WorkItemCtx& ctx, const KernelArgs&) {
    ctx.barrier();
    if (ctx.local_id() == 3) throw PreconditionError("boom");
    ctx.barrier();
  };
  KernelArgs args;
  EXPECT_THROW(executor.execute(bad, args, NDRange{8, 8}, stats),
               PreconditionError);

  // The abort-unwinding protocol must leave every fiber finished, so the
  // SAME executor (and therefore the Device that owns it) keeps working.
  Kernel good;
  good.name = "fine";
  std::size_t ran = 0;
  good.body = [&](WorkItemCtx& ctx, const KernelArgs&) {
    ctx.barrier();
    ++ran;
  };
  EXPECT_NO_THROW(executor.execute(good, args, NDRange{8, 8}, stats));
  EXPECT_EQ(ran, 8u);
}

TEST(ExecutorStress, DivergenceErrorAlsoLeavesExecutorReusable) {
  WorkGroupExecutor executor(16 * 1024, 4);
  RuntimeStats stats;
  Kernel divergent;
  divergent.name = "divergent";
  divergent.body = [](WorkItemCtx& ctx, const KernelArgs&) {
    if (ctx.local_id() == 0) ctx.barrier();
  };
  KernelArgs args;
  EXPECT_THROW(executor.execute(divergent, args, NDRange{4, 4}, stats),
               PreconditionError);
  Kernel good;
  good.name = "fine";
  good.body = [](WorkItemCtx& ctx, const KernelArgs&) { ctx.barrier(); };
  EXPECT_NO_THROW(executor.execute(good, args, NDRange{4, 4}, stats));
}

TEST(ExecutorStress, LocalArenaIsReusedAcrossGroupsWithoutBleed) {
  // Group g writes g-dependent data; each group must see only its own
  // writes within a phase (values are re-initialised before reads).
  WorkGroupExecutor executor(16 * 1024, 4);
  RuntimeStats stats;
  std::vector<double> sums(50, 0.0);
  Kernel kernel;
  kernel.name = "arena_reuse";
  kernel.body = [&](WorkItemCtx& ctx, const KernelArgs&) {
    auto row = ctx.local_array<double>(4);
    row.set(ctx.local_id(), static_cast<double>(ctx.group_id() + 1));
    ctx.barrier();
    if (ctx.local_id() == 0) {
      double sum = 0.0;
      for (std::size_t i = 0; i < 4; ++i) sum += row.get(i);
      sums[ctx.group_id()] = sum;
    }
  };
  KernelArgs args;
  executor.execute(kernel, args, NDRange{200, 4}, stats);
  for (std::size_t g = 0; g < 50; ++g) {
    EXPECT_DOUBLE_EQ(sums[g], 4.0 * static_cast<double>(g + 1)) << "group " << g;
  }
}

}  // namespace
}  // namespace binopt::ocl
