#include "ocl/fiber.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/error.h"

namespace binopt::ocl {
namespace {

TEST(Fiber, RunsToCompletionWithoutYield) {
  Fiber fiber;
  int value = 0;
  fiber.start([&] { value = 42; });
  EXPECT_FALSE(fiber.resume());
  EXPECT_EQ(value, 42);
  EXPECT_TRUE(fiber.done());
}

TEST(Fiber, YieldSuspendsAndResumes) {
  Fiber fiber;
  std::vector<int> trace;
  fiber.start([&] {
    trace.push_back(1);
    fiber.yield();
    trace.push_back(2);
    fiber.yield();
    trace.push_back(3);
  });
  EXPECT_TRUE(fiber.resume());
  EXPECT_EQ(trace, (std::vector<int>{1}));
  EXPECT_TRUE(fiber.resume());
  EXPECT_EQ(trace, (std::vector<int>{1, 2}));
  EXPECT_FALSE(fiber.resume());
  EXPECT_EQ(trace, (std::vector<int>{1, 2, 3}));
}

TEST(Fiber, ManyYieldsSurvive) {
  Fiber fiber;
  int counter = 0;
  fiber.start([&] {
    for (int i = 0; i < 10000; ++i) {
      ++counter;
      fiber.yield();
    }
  });
  int resumes = 0;
  while (fiber.resume()) ++resumes;
  EXPECT_EQ(counter, 10000);
  EXPECT_EQ(resumes, 10000);
}

TEST(Fiber, ExceptionsPropagateToResumer) {
  Fiber fiber;
  fiber.start([] { throw PreconditionError("boom"); });
  EXPECT_THROW((void)fiber.resume(), PreconditionError);
  EXPECT_TRUE(fiber.done());
}

TEST(Fiber, ExceptionAfterYieldPropagates) {
  Fiber fiber;
  fiber.start([&] {
    fiber.yield();
    throw InvariantError("late boom");
  });
  EXPECT_TRUE(fiber.resume());
  EXPECT_THROW((void)fiber.resume(), InvariantError);
}

TEST(Fiber, ReusableAfterCompletion) {
  Fiber fiber;
  int runs = 0;
  for (int i = 0; i < 3; ++i) {
    fiber.start([&] { ++runs; });
    EXPECT_FALSE(fiber.resume());
  }
  EXPECT_EQ(runs, 3);
}

TEST(Fiber, ResumingFinishedFiberThrows) {
  Fiber fiber;
  fiber.start([] {});
  (void)fiber.resume();
  EXPECT_THROW((void)fiber.resume(), PreconditionError);
}

TEST(Fiber, RejectsTinyStack) {
  EXPECT_THROW(Fiber(1024), PreconditionError);
}

TEST(Fiber, InterleavedFibersKeepSeparateStacks) {
  Fiber a;
  Fiber b;
  std::vector<std::string> trace;
  a.start([&] {
    trace.push_back("a1");
    a.yield();
    trace.push_back("a2");
  });
  b.start([&] {
    trace.push_back("b1");
    b.yield();
    trace.push_back("b2");
  });
  EXPECT_TRUE(a.resume());
  EXPECT_TRUE(b.resume());
  EXPECT_FALSE(a.resume());
  EXPECT_FALSE(b.resume());
  EXPECT_EQ(trace,
            (std::vector<std::string>{"a1", "b1", "a2", "b2"}));
}

TEST(FiberPool, GrowsAndReuses) {
  FiberPool pool;
  const auto first = pool.acquire(4);
  EXPECT_EQ(first.size(), 4u);
  EXPECT_EQ(pool.size(), 4u);
  const auto second = pool.acquire(8);
  EXPECT_EQ(second.size(), 8u);
  EXPECT_EQ(pool.size(), 8u);
  // The first four are the same objects (reused).
  for (std::size_t i = 0; i < 4; ++i) EXPECT_EQ(first[i], second[i]);
}

TEST(FiberPool, RefusesAcquireWhileRunning) {
  FiberPool pool;
  auto fibers = pool.acquire(1);
  fibers[0]->start([&] { fibers[0]->yield(); });
  EXPECT_TRUE(fibers[0]->resume());  // parked at yield
  EXPECT_THROW((void)pool.acquire(1), PreconditionError);
  EXPECT_FALSE(fibers[0]->resume());
}

}  // namespace
}  // namespace binopt::ocl
