// Execution-model tests: NDRange ids, barrier semantics (the property the
// whole kernel IV.B reproduction rests on), local memory discipline, and
// divergence detection.
#include "ocl/workgroup_executor.h"

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "ocl/buffer.h"

namespace binopt::ocl {
namespace {

class ExecutorTest : public ::testing::Test {
protected:
  WorkGroupExecutor executor_{/*local_mem_bytes=*/16 * 1024,
                              /*max_workgroup_size=*/256};
  RuntimeStats stats_;
};

TEST_F(ExecutorTest, IdsAreConsistent) {
  std::vector<int> seen(24, 0);
  Kernel kernel;
  kernel.name = "ids";
  kernel.body = [&](WorkItemCtx& ctx, const KernelArgs&) {
    EXPECT_EQ(ctx.global_id(), ctx.group_id() * ctx.local_size() + ctx.local_id());
    EXPECT_EQ(ctx.local_size(), 8u);
    EXPECT_EQ(ctx.global_size(), 24u);
    EXPECT_EQ(ctx.num_groups(), 3u);
    ++seen[ctx.global_id()];
  };
  KernelArgs args;
  executor_.execute(kernel, args, NDRange{24, 8}, stats_);
  for (int count : seen) EXPECT_EQ(count, 1);
  EXPECT_EQ(stats_.work_items_executed, 24u);
  EXPECT_EQ(stats_.work_groups_executed, 3u);
  EXPECT_EQ(stats_.kernels_enqueued, 1u);
}

TEST_F(ExecutorTest, BarrierMakesLocalWritesVisible) {
  // Work-item i writes slot i, then after a barrier reads neighbour i+1.
  // Without real barrier semantics the read would see stale data.
  std::vector<double> observed(16, -1.0);
  Kernel kernel;
  kernel.name = "neighbour_exchange";
  kernel.body = [&](WorkItemCtx& ctx, const KernelArgs&) {
    auto row = ctx.local_array<double>(ctx.local_size());
    row.set(ctx.local_id(), static_cast<double>(ctx.local_id()) * 10.0);
    ctx.barrier();
    const std::size_t next = (ctx.local_id() + 1) % ctx.local_size();
    observed[ctx.global_id()] = row.get(next);
  };
  KernelArgs args;
  executor_.execute(kernel, args, NDRange{16, 16}, stats_);
  for (std::size_t i = 0; i < 16; ++i) {
    EXPECT_DOUBLE_EQ(observed[i], static_cast<double>((i + 1) % 16) * 10.0);
  }
  EXPECT_EQ(stats_.barriers_executed, 16u);
}

TEST_F(ExecutorTest, MultiPhaseBarrierPipeline) {
  // Parallel reduction across 3 barrier phases — each phase must observe
  // the previous phase's local stores from every work-item.
  double result = 0.0;
  Kernel kernel;
  kernel.name = "reduction";
  kernel.body = [&](WorkItemCtx& ctx, const KernelArgs&) {
    const std::size_t n = ctx.local_size();
    auto scratch = ctx.local_array<double>(n);
    scratch.set(ctx.local_id(), static_cast<double>(ctx.local_id() + 1));
    ctx.barrier();
    for (std::size_t stride = n / 2; stride > 0; stride /= 2) {
      if (ctx.local_id() < stride) {
        scratch.set(ctx.local_id(), scratch.get(ctx.local_id()) +
                                        scratch.get(ctx.local_id() + stride));
      }
      ctx.barrier();
    }
    if (ctx.local_id() == 0) result = scratch.get(0);
  };
  KernelArgs args;
  executor_.execute(kernel, args, NDRange{8, 8}, stats_);
  EXPECT_DOUBLE_EQ(result, 36.0);  // 1+...+8
}

TEST_F(ExecutorTest, BarrierDivergenceIsDetected) {
  Kernel kernel;
  kernel.name = "divergent";
  kernel.body = [&](WorkItemCtx& ctx, const KernelArgs&) {
    if (ctx.local_id() == 0) ctx.barrier();  // only one item synchronises
  };
  KernelArgs args;
  EXPECT_THROW(executor_.execute(kernel, args, NDRange{4, 4}, stats_),
               PreconditionError);
}

TEST_F(ExecutorTest, MismatchedBarrierCountsAreDetected) {
  Kernel kernel;
  kernel.name = "count_mismatch";
  kernel.body = [&](WorkItemCtx& ctx, const KernelArgs&) {
    ctx.barrier();
    if (ctx.local_id() == 0) ctx.barrier();  // extra barrier on one item
  };
  KernelArgs args;
  EXPECT_THROW(executor_.execute(kernel, args, NDRange{4, 4}, stats_),
               PreconditionError);
}

TEST_F(ExecutorTest, LocalAllocationSharedAcrossGroup) {
  Kernel kernel;
  kernel.name = "shared_alloc";
  std::vector<double> sums(2, 0.0);
  kernel.body = [&](WorkItemCtx& ctx, const KernelArgs&) {
    auto a = ctx.local_array<double>(4);
    a.set(ctx.local_id(), 1.0);
    ctx.barrier();
    if (ctx.local_id() == 0) {
      double sum = 0.0;
      for (std::size_t i = 0; i < 4; ++i) sum += a.get(i);
      sums[ctx.group_id()] = sum;
    }
  };
  KernelArgs args;
  executor_.execute(kernel, args, NDRange{8, 4}, stats_);
  EXPECT_DOUBLE_EQ(sums[0], 4.0);
  EXPECT_DOUBLE_EQ(sums[1], 4.0);
}

TEST_F(ExecutorTest, DivergentLocalAllocationSizeThrows) {
  Kernel kernel;
  kernel.name = "divergent_alloc";
  kernel.body = [&](WorkItemCtx& ctx, const KernelArgs&) {
    // Different sizes per work-item: illegal static local allocation.
    auto a = ctx.local_array<double>(ctx.local_id() + 1);
    (void)a;
    ctx.barrier();
  };
  KernelArgs args;
  EXPECT_THROW(executor_.execute(kernel, args, NDRange{4, 4}, stats_),
               PreconditionError);
}

TEST_F(ExecutorTest, LocalMemoryExhaustionThrows) {
  Kernel kernel;
  kernel.name = "oom";
  kernel.body = [&](WorkItemCtx& ctx, const KernelArgs&) {
    auto a = ctx.local_array<double>(16 * 1024);  // 128 KiB > 16 KiB arena
    (void)a;
  };
  KernelArgs args;
  EXPECT_THROW(executor_.execute(kernel, args, NDRange{1, 1}, stats_),
               PreconditionError);
}

TEST_F(ExecutorTest, FastPathRunsBarrierFreeKernels) {
  Kernel kernel;
  kernel.name = "fast";
  kernel.uses_barriers = false;
  std::size_t count = 0;
  kernel.body = [&](WorkItemCtx&, const KernelArgs&) { ++count; };
  KernelArgs args;
  executor_.execute(kernel, args, NDRange{64, 16}, stats_);
  EXPECT_EQ(count, 64u);
  EXPECT_EQ(stats_.work_items_executed, 64u);
}

TEST_F(ExecutorTest, BarrierInFastPathKernelThrows) {
  Kernel kernel;
  kernel.name = "lying_kernel";
  kernel.uses_barriers = false;
  kernel.body = [&](WorkItemCtx& ctx, const KernelArgs&) { ctx.barrier(); };
  KernelArgs args;
  EXPECT_THROW(executor_.execute(kernel, args, NDRange{2, 2}, stats_),
               PreconditionError);
}

TEST_F(ExecutorTest, ValidatesNDRange) {
  Kernel kernel;
  kernel.name = "k";
  kernel.body = [](WorkItemCtx&, const KernelArgs&) {};
  KernelArgs args;
  EXPECT_THROW(executor_.execute(kernel, args, NDRange{10, 3}, stats_),
               PreconditionError);  // local does not divide global
  EXPECT_THROW(executor_.execute(kernel, args, NDRange{512, 512}, stats_),
               PreconditionError);  // exceeds max work-group size
  EXPECT_THROW(executor_.execute(kernel, args, NDRange{0, 1}, stats_),
               PreconditionError);  // empty
}

TEST_F(ExecutorTest, KernelExceptionsPropagate) {
  Kernel kernel;
  kernel.name = "thrower";
  kernel.body = [](WorkItemCtx& ctx, const KernelArgs&) {
    if (ctx.global_id() == 3) throw PreconditionError("kernel bug");
    ctx.barrier();
  };
  KernelArgs args;
  EXPECT_THROW(executor_.execute(kernel, args, NDRange{8, 8}, stats_),
               PreconditionError);
}

TEST_F(ExecutorTest, GlobalAccessorsCountTraffic) {
  Buffer buffer(8 * sizeof(double), MemFlags::kReadWrite, "buf");
  Kernel kernel;
  kernel.name = "traffic";
  kernel.uses_barriers = false;
  kernel.body = [&](WorkItemCtx& ctx, const KernelArgs&) {
    auto view = ctx.global<double>(buffer);
    view.set(ctx.global_id(), 1.5);
    (void)view.get(ctx.global_id());
  };
  KernelArgs args;
  executor_.execute(kernel, args, NDRange{8, 8}, stats_);
  EXPECT_EQ(stats_.global_store_bytes, 8u * sizeof(double));
  EXPECT_EQ(stats_.global_load_bytes, 8u * sizeof(double));
}

}  // namespace
}  // namespace binopt::ocl
