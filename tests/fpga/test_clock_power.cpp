// Clock and power model tests: exactness at the paper's two anchors, and
// the Section V-C workaround behaviour (lower the clock to meet 10 W).
#include <gtest/gtest.h>

#include "common/error.h"
#include "fpga/clock_model.h"
#include "fpga/power_model.h"

namespace binopt::fpga {
namespace {

TEST(ClockModel, ReproducesBothTableIAnchors) {
  const ClockModel clock;
  EXPECT_NEAR(clock.fmax_mhz(0.99), 98.27, 1e-9);
  EXPECT_NEAR(clock.fmax_mhz(0.66), 162.62, 1e-9);
}

TEST(ClockModel, FmaxFallsWithUtilization) {
  const ClockModel clock;
  double prev = 1e9;
  for (double util : {0.1, 0.3, 0.5, 0.7, 0.9, 1.0}) {
    const double f = clock.fmax_mhz(util);
    EXPECT_LE(f, prev);
    prev = f;
  }
}

TEST(ClockModel, ClampedToPracticalRange) {
  const ClockModel clock;
  EXPECT_LE(clock.fmax_mhz(0.0), ClockModel::kMaxFmax);
  EXPECT_GE(clock.fmax_mhz(1.2), ClockModel::kMinFmax);
}

TEST(ClockModel, RejectsNonsenseUtilization) {
  const ClockModel clock;
  EXPECT_THROW((void)clock.fmax_mhz(-0.1), PreconditionError);
  EXPECT_THROW((void)clock.fmax_mhz(2.0), PreconditionError);
}

TEST(PowerModel, ReproducesBothTableIAnchors) {
  const PowerModel power;
  EXPECT_NEAR(power
                  .estimate(PowerModel::kAnchorA_Util, PowerModel::kAnchorA_M9k,
                            PowerModel::kAnchorA_Fmax)
                  .total(),
              15.0, 1e-9);
  EXPECT_NEAR(power
                  .estimate(PowerModel::kAnchorB_Util, PowerModel::kAnchorB_M9k,
                            PowerModel::kAnchorB_Fmax)
                  .total(),
              17.0, 1e-9);
}

TEST(PowerModel, StaticFloorAtZeroClock) {
  const PowerModel power;
  const PowerBreakdown p = power.estimate(0.5, 0.5, 0.0);
  EXPECT_DOUBLE_EQ(p.dynamic_watts, 0.0);
  EXPECT_DOUBLE_EQ(p.total(), PowerModel::kStaticWatts);
}

TEST(PowerModel, DynamicPowerLinearInClock) {
  const PowerModel power;
  const double p100 = power.estimate(0.8, 0.8, 100.0).dynamic_watts;
  const double p200 = power.estimate(0.8, 0.8, 200.0).dynamic_watts;
  EXPECT_NEAR(p200, 2.0 * p100, 1e-9);
}

TEST(PowerModel, BudgetInversionMatchesForwardModel) {
  const PowerModel power;
  // Section V-C workaround: what clock keeps kernel IV.B under 10 W?
  const double fmax = power.max_fmax_for_budget(
      PowerModel::kAnchorB_Util, PowerModel::kAnchorB_M9k, 10.0);
  EXPECT_GT(fmax, 0.0);
  EXPECT_LT(fmax, PowerModel::kAnchorB_Fmax);  // must be lower than 162.62
  EXPECT_NEAR(power
                  .estimate(PowerModel::kAnchorB_Util, PowerModel::kAnchorB_M9k,
                            fmax)
                  .total(),
              10.0, 1e-9);
}

TEST(PowerModel, ImpossibleBudgetReturnsZero) {
  const PowerModel power;
  EXPECT_DOUBLE_EQ(power.max_fmax_for_budget(0.9, 0.9, 3.0), 0.0);
}

TEST(PowerModel, CoefficientsArePositive) {
  const PowerModel power;
  EXPECT_GT(power.logic_coeff(), 0.0);
  EXPECT_GT(power.ram_coeff(), 0.0);
}

TEST(PowerModel, FpgaOrderOfMagnitudeBelowCpuGpu) {
  // The paper's headline: ~10-20 W FPGA vs 120/140 W CPU/GPU TDPs.
  const PowerModel power;
  const double fpga =
      power.estimate(0.99, 0.98, 98.27).total();
  EXPECT_LT(fpga * 5.0, 120.0);
  EXPECT_LT(fpga * 5.0, 140.0);
}

}  // namespace
}  // namespace binopt::fpga
