// Fitter tests: Table I reproduction at the published design points, and
// monotone response of the resource model to the three parallelisation
// options (the properties the design-space exploration depends on).
#include "fpga/fitter.h"

#include <gtest/gtest.h>

#include "devices/calibration.h"
#include "fpga/op_library.h"
#include "kernels/ir_builders.h"

namespace binopt::fpga {
namespace {

class FitterTest : public ::testing::Test {
protected:
  Fitter fitter_;
  KernelIR ir_a_ = kernels::kernel_a_ir(1024);
  KernelIR ir_b_ = kernels::kernel_b_ir(1024);
};

TEST_F(FitterTest, CalibratedKernelAMatchesTableI) {
  const CompileOptions opts = devices::kernel_a_published_options();
  const ResourceUsage target = devices::kernel_a_published_usage();
  const FitCalibration cal = fitter_.calibrate(ir_a_, opts, target);
  const FitResult fit = fitter_.fit(ir_a_, opts, cal);
  EXPECT_NEAR(fit.logic_utilization, 0.99, 0.005);
  EXPECT_NEAR(fit.usage.registers, 411.0 * 1024.0, 512.0);
  EXPECT_NEAR(fit.usage.memory_bits, 10843.0 * 1024.0, 1024.0);
  EXPECT_NEAR(fit.usage.m9k, 1250.0, 1.0);
  EXPECT_NEAR(fit.usage.dsp18, 586.0, 1.0);
  EXPECT_TRUE(fit.fits);
}

TEST_F(FitterTest, CalibratedKernelBMatchesTableI) {
  const CompileOptions opts = devices::kernel_b_published_options();
  const ResourceUsage target = devices::kernel_b_published_usage();
  const FitCalibration cal = fitter_.calibrate(ir_b_, opts, target);
  const FitResult fit = fitter_.fit(ir_b_, opts, cal);
  EXPECT_NEAR(fit.logic_utilization, 0.66, 0.005);
  EXPECT_NEAR(fit.usage.registers, 245.0 * 1024.0, 512.0);
  EXPECT_NEAR(fit.usage.memory_bits, 7990.0 * 1024.0, 1024.0);
  EXPECT_NEAR(fit.usage.m9k, 1118.0, 1.0);
  EXPECT_NEAR(fit.usage.dsp18, 760.0, 1.0);
  EXPECT_TRUE(fit.fits);
}

TEST_F(FitterTest, VectorizationScalesDatapathResources) {
  CompileOptions narrow{1, 1, 1};
  CompileOptions wide{4, 1, 1};
  const ResourceUsage a = fitter_.model(ir_b_, narrow);
  const ResourceUsage b = fitter_.model(ir_b_, wide);
  EXPECT_GT(b.dsp18, a.dsp18 * 3.0);  // near-linear in SIMD width
  EXPECT_GT(b.aluts, a.aluts * 2.0);
  EXPECT_GT(b.registers, a.registers);
}

TEST_F(FitterTest, ReplicationScalesEverythingLinearly) {
  CompileOptions one{2, 1, 1};
  CompileOptions three{2, 3, 1};
  const ResourceUsage a = fitter_.model(ir_a_, one);
  const ResourceUsage b = fitter_.model(ir_a_, three);
  EXPECT_NEAR(b.aluts / a.aluts, 3.0, 1e-9);
  EXPECT_NEAR(b.dsp18 / a.dsp18, 3.0, 1e-9);
  EXPECT_NEAR(b.m9k / a.m9k, 3.0, 1e-9);
}

TEST_F(FitterTest, UnrollingScalesLoopBodyOnly) {
  CompileOptions rolled{1, 1, 1};
  CompileOptions unrolled{1, 1, 4};
  const ResourceUsage a = fitter_.model(ir_b_, rolled);
  const ResourceUsage b = fitter_.model(ir_b_, unrolled);
  EXPECT_GT(b.dsp18, a.dsp18);
  // The pow unit is straight-line, so DSP must grow SUBlinearly with the
  // unroll factor (loop muls x4, pow x1).
  EXPECT_LT(b.dsp18, a.dsp18 * 4.0);
  // Kernel A has no loop: unrolling must be a no-op on it.
  EXPECT_DOUBLE_EQ(fitter_.model(ir_a_, rolled).dsp18,
                   fitter_.model(ir_a_, CompileOptions{1, 1, 4}).dsp18);
}

TEST_F(FitterTest, LocalBufferPortsDriveM9kReplication) {
  CompileOptions few_lanes{1, 1, 1};
  CompileOptions many_lanes{4, 1, 2};
  const ResourceUsage a = fitter_.model(ir_b_, few_lanes);
  const ResourceUsage b = fitter_.model(ir_b_, many_lanes);
  EXPECT_GT(b.m9k, a.m9k);
}

TEST_F(FitterTest, OversizedDesignFailsToFit) {
  const FitResult fit =
      fitter_.fit(ir_a_, CompileOptions{8, 8, 1},
                  fitter_.calibrate(ir_a_, devices::kernel_a_published_options(),
                                    devices::kernel_a_published_usage()));
  EXPECT_FALSE(fit.fits);
  EXPECT_FALSE(fit.failures.empty());
}

TEST_F(FitterTest, M9kOverflowSpillsToM144k) {
  // Huge local buffer: far beyond the 1280 M9K blocks.
  KernelIR ir = ir_b_;
  ir.local_buffers[0].words = 200000;
  ir.local_buffers[0].access_sites = 16.0;
  const FitResult fit = fitter_.fit(ir, CompileOptions{4, 1, 4});
  EXPECT_LE(fit.usage.m9k, fitter_.device().capacity.m9k + 1e-9);
  EXPECT_GT(fit.usage.m144k, 0.0);
}

TEST_F(FitterTest, PipelineLatencyGrowsWithOpChain) {
  const CompileOptions opts{1, 1, 1};
  const FitResult fa = fitter_.fit(ir_a_, opts);
  KernelIR longer = ir_a_;
  longer.ops.push_back(
      OpInstance{OpKind::kFDiv, Precision::kDouble, Section::kStraightLine, 2.0});
  const FitResult fb = fitter_.fit(longer, opts);
  EXPECT_GT(fb.pipeline_latency_cycles, fa.pipeline_latency_cycles);
}

TEST_F(FitterTest, SinglePrecisionIsCheaper) {
  const KernelIR dp = kernels::kernel_b_ir(1024, Precision::kDouble);
  const KernelIR sp = kernels::kernel_b_ir(1024, Precision::kSingle);
  const CompileOptions opts{4, 1, 2};
  const ResourceUsage rd = fitter_.model(dp, opts);
  const ResourceUsage rs = fitter_.model(sp, opts);
  EXPECT_LT(rs.dsp18, rd.dsp18);
  EXPECT_LT(rs.aluts, rd.aluts);
}

TEST_F(FitterTest, ValidationCatchesBadInputs) {
  EXPECT_THROW((void)fitter_.model(ir_a_, CompileOptions{3, 1, 1}),
               PreconditionError);  // non-power-of-two SIMD
  KernelIR empty;
  empty.name = "empty";
  EXPECT_THROW((void)fitter_.model(empty, CompileOptions{1, 1, 1}),
               PreconditionError);
}

TEST(OpLibrary, PowIsComposedOfLogMulExp) {
  const OpCost p = op_cost(OpKind::kFPow, Precision::kDouble);
  const OpCost l = op_cost(OpKind::kFLog, Precision::kDouble);
  const OpCost m = op_cost(OpKind::kFMul, Precision::kDouble);
  const OpCost e = op_cost(OpKind::kFExp, Precision::kDouble);
  EXPECT_DOUBLE_EQ(p.dsp18, l.dsp18 + m.dsp18 + e.dsp18);
  EXPECT_DOUBLE_EQ(p.latency_cycles,
                   l.latency_cycles + m.latency_cycles + e.latency_cycles);
}

TEST(OpLibrary, M9kBlocksPerReplicaGeometry) {
  // 1025 x 64-bit: ceil(1025/256) = 5 depth blocks x 2 width slices = 10.
  EXPECT_DOUBLE_EQ(m9k_blocks_per_replica(LocalBuffer{1025, 8, 1.0}), 10.0);
  // 256 x 32-bit fits one block.
  EXPECT_DOUBLE_EQ(m9k_blocks_per_replica(LocalBuffer{256, 4, 1.0}), 1.0);
}

TEST(OpLibrary, GlobalLsuCarriesFifosOnlyWhenCoalescing) {
  const AccessSite site{MemSpace::kGlobal, false, Section::kStraightLine, 8, 1.0};
  EXPECT_GT(lsu_cost(site, true).m9k_fifo, 0.0);
  EXPECT_DOUBLE_EQ(lsu_cost(site, false).m9k_fifo, 0.0);
}

}  // namespace
}  // namespace binopt::fpga
