// II analysis + IR validation hardening tests.
//
// The paper's two architectures differ exactly here: kernel IV.A streams
// one lattice level per pipeline invocation (no loop-carried dependence,
// II = 1) while kernel IV.B's backward induction feeds values[k] from the
// previous iteration through local memory AND carries the running spot
// price in a private scalar — its II is bounded by the longest recurrence
// chain. The fitter must fold that asymmetry into predicted latency.
#include "fpga/ii_analysis.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "fpga/clock_model.h"
#include "fpga/fitter.h"
#include "fpga/op_library.h"
#include "kernels/ir_builders.h"

namespace binopt::fpga {
namespace {

TEST(IIAnalysis, KernelAHasNoLoopCarriedDependence) {
  const IIAnalysis ii = analyze_initiation_interval(kernels::kernel_a_ir(1024));
  EXPECT_DOUBLE_EQ(ii.ii, 1.0);
  EXPECT_TRUE(ii.memory_edges.empty());
  EXPECT_TRUE(ii.scalar_edges.empty());
}

TEST(IIAnalysis, KernelBLocalRecurrenceBoundsTheII) {
  const IIAnalysis ii = analyze_initiation_interval(kernels::kernel_b_ir(1024));
  // The values-row recurrence: local load -> fmul/fadd/fmax datapath ->
  // local store, at distance 1.
  ASSERT_FALSE(ii.memory_edges.empty());
  const double expected_chain =
      lsu_cost(AccessSite{MemSpace::kLocal, false, Section::kLoopBody, 8, 1.0},
               false)
          .latency_cycles +
      op_cost(OpKind::kFMul, Precision::kDouble).latency_cycles +
      op_cost(OpKind::kFAdd, Precision::kDouble).latency_cycles +
      op_cost(OpKind::kFMax, Precision::kDouble).latency_cycles +
      lsu_cost(AccessSite{MemSpace::kLocal, true, Section::kLoopBody, 8, 1.0},
               false)
          .latency_cycles;
  EXPECT_DOUBLE_EQ(ii.ii, expected_chain);
  bool found_distance_one = false;
  for (const DependenceEdge& edge : ii.memory_edges) {
    if (edge.distance == 1) found_distance_one = true;
    EXPECT_GE(edge.distance, 1);
  }
  EXPECT_TRUE(found_distance_one);
  // The private `s_priv *= u` recurrence is tracked but shorter than the
  // memory chain.
  ASSERT_EQ(ii.scalar_edges.size(), 1u);
  EXPECT_EQ(ii.scalar_edges[0].name, "s_priv");
  EXPECT_DOUBLE_EQ(ii.scalar_edges[0].chain_latency_cycles,
                   op_cost(OpKind::kFMul, Precision::kDouble).latency_cycles);
}

TEST(IIAnalysis, ArchitecturesDifferAsThePaperPredicts) {
  const IIAnalysis a = analyze_initiation_interval(kernels::kernel_a_ir(256));
  const IIAnalysis b = analyze_initiation_interval(kernels::kernel_b_ir(256));
  EXPECT_LT(a.ii, b.ii);  // IV.A streams; IV.B serialises on the row
  EXPECT_GT(b.ii, 10.0);  // a real multi-cycle recurrence, not an epsilon
}

TEST(IIAnalysis, FitterFoldsIIIntoPredictedLatency) {
  Fitter fitter;
  const CompileOptions opts{1, 1, 1};
  const KernelIR ir_b = kernels::kernel_b_ir(1024);
  const FitResult fit = fitter.fit(ir_b, opts);
  const IIAnalysis ii = analyze_initiation_interval(ir_b);
  EXPECT_DOUBLE_EQ(fit.initiation_interval, ii.ii);
  // Pinned latency decomposition: depth to fill the pipeline once, then
  // one II per remaining loop iteration.
  EXPECT_DOUBLE_EQ(
      fit.pipeline_latency_cycles,
      fit.pipeline_depth_cycles + (ir_b.loop_trip_count - 1.0) * ii.ii);
  // The II term must dominate for a 1024-step tree — this is the
  // "measurable change" the II analysis buys over a depth-only model.
  EXPECT_GT(fit.pipeline_latency_cycles, 2.0 * fit.pipeline_depth_cycles);

  const KernelIR ir_a = kernels::kernel_a_ir(1024);
  const FitResult fit_a = fitter.fit(ir_a, opts);
  EXPECT_DOUBLE_EQ(fit_a.initiation_interval, 1.0);
  EXPECT_DOUBLE_EQ(fit_a.pipeline_latency_cycles, fit_a.pipeline_depth_cycles);
}

TEST(IIAnalysis, ClockModelBridgesCyclesToMicroseconds) {
  const ClockModel clock;
  const double us = clock.latency_us(1000.0, ClockModel::kAnchorUtilB);
  EXPECT_NEAR(us, 1000.0 / ClockModel::kAnchorFmaxB, 1e-9);
  EXPECT_THROW((void)clock.latency_us(-1.0, 0.5), Error);
}

// ---------------------------------------------------------------------------
// KernelIR::validate() hardening: every malformed field is rejected with a
// message naming the field.
// ---------------------------------------------------------------------------

void expect_validate_rejects(KernelIR ir, const std::string& field) {
  try {
    ir.validate();
    FAIL() << "expected validate() to reject " << field;
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find(field), std::string::npos)
        << "message: " << e.what();
  }
}

TEST(IrValidation, RejectsNonFiniteOpCount) {
  KernelIR ir = kernels::kernel_b_ir(64);
  ir.ops[0].count = std::numeric_limits<double>::quiet_NaN();
  expect_validate_rejects(ir, "OpInstance::count");
}

TEST(IrValidation, RejectsNegativeAccessCount) {
  KernelIR ir = kernels::kernel_b_ir(64);
  ir.accesses[0].count = -1.0;
  expect_validate_rejects(ir, "AccessSite::count");
}

TEST(IrValidation, RejectsZeroElementBytes) {
  KernelIR ir = kernels::kernel_b_ir(64);
  ir.accesses[0].element_bytes = 0;
  expect_validate_rejects(ir, "AccessSite::element_bytes");
}

TEST(IrValidation, RejectsOutOfRangeGlobalBufferIndex) {
  KernelIR ir = kernels::kernel_a_ir(64);
  ir.accesses[0].buffer = ir.global_buffers.size();
  expect_validate_rejects(ir, "AccessSite::buffer");
}

TEST(IrValidation, RejectsOutOfRangeLocalBufferIndex) {
  KernelIR ir = kernels::kernel_b_ir(64);
  for (AccessSite& site : ir.accesses) {
    if (site.space == MemSpace::kLocal) {
      site.buffer = ir.local_buffers.size();
      break;
    }
  }
  expect_validate_rejects(ir, "AccessSite::buffer");
}

TEST(IrValidation, RejectsZeroByteBufferWords) {
  KernelIR a = kernels::kernel_a_ir(64);
  a.global_buffers[0].word_bytes = 0;
  expect_validate_rejects(std::move(a), "GlobalBufferDecl::word");

  KernelIR b = kernels::kernel_b_ir(64);
  b.local_buffers[0].words = 0;
  expect_validate_rejects(std::move(b), "LocalBuffer::words");
}

TEST(IrValidation, RejectsNonFiniteBarrierCount) {
  KernelIR ir = kernels::kernel_b_ir(64);
  ir.barriers[0].count = std::numeric_limits<double>::infinity();
  expect_validate_rejects(ir, "BarrierSite::count");
}

TEST(IrValidation, RejectsDegenerateLoopTripCount) {
  KernelIR ir = kernels::kernel_b_ir(64);
  ir.loop_trip_count = 0.0;
  expect_validate_rejects(ir, "KernelIR::loop_trip_count");
  ir = kernels::kernel_b_ir(64);
  ir.loop_trip_count = std::numeric_limits<double>::quiet_NaN();
  expect_validate_rejects(ir, "KernelIR::loop_trip_count");
}

TEST(IrValidation, RejectsEmptyScalarRecurrence) {
  KernelIR ir = kernels::kernel_b_ir(64);
  ir.recurrences.push_back(ScalarRecurrence{"", {OpKind::kFMul}});
  expect_validate_rejects(ir, "ScalarRecurrence");
  ir = kernels::kernel_b_ir(64);
  ir.recurrences.push_back(ScalarRecurrence{"t", {}});
  expect_validate_rejects(ir, "ScalarRecurrence");
}

TEST(IrValidation, PaperIrsStillValidate) {
  EXPECT_NO_THROW(kernels::kernel_a_ir(1024).validate());
  EXPECT_NO_THROW(kernels::kernel_b_ir(1024).validate());
}

}  // namespace
}  // namespace binopt::fpga
