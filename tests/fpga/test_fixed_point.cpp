#include "fpga/fixed_point.h"

#include <gtest/gtest.h>

#include <cmath>

namespace binopt::fpga {
namespace {

using Q8 = Fixed<8, 16>;

TEST(FixedPoint, RoundTripsDoubles) {
  for (double x : {0.0, 1.0, -1.0, 3.14159, -127.5, 0.0001}) {
    EXPECT_NEAR(Q8::from_double(x).to_double(), x, Q8::epsilon());
  }
}

TEST(FixedPoint, EpsilonIsTheLsb) {
  EXPECT_DOUBLE_EQ(Q8::epsilon(), 1.0 / 65536.0);
  EXPECT_DOUBLE_EQ(PriceFixed::epsilon(), std::ldexp(1.0, -46));
}

TEST(FixedPoint, AddSubExact) {
  const Q8 a = Q8::from_double(2.5);
  const Q8 b = Q8::from_double(1.25);
  EXPECT_DOUBLE_EQ((a + b).to_double(), 3.75);
  EXPECT_DOUBLE_EQ((a - b).to_double(), 1.25);
}

TEST(FixedPoint, MultiplyRoundsToNearest) {
  const Q8 a = Q8::from_double(1.5);
  const Q8 b = Q8::from_double(2.25);
  EXPECT_NEAR((a * b).to_double(), 3.375, Q8::epsilon());
  // Negative operands too.
  const Q8 c = Q8::from_double(-1.5);
  EXPECT_NEAR((c * b).to_double(), -3.375, Q8::epsilon());
}

TEST(FixedPoint, SaturatesInsteadOfWrapping) {
  const Q8 big = Q8::from_double(200.0);
  const Q8 sum = big + big;  // 400 > 2^8 range
  EXPECT_DOUBLE_EQ(sum.raw(), Q8::kMaxRaw);
  const Q8 neg = Q8::from_double(-200.0);
  EXPECT_DOUBLE_EQ((neg + neg).raw(), Q8::kMinRaw);
  // from_double saturates too.
  EXPECT_DOUBLE_EQ(Q8::from_double(1e9).raw(), Q8::kMaxRaw);
  EXPECT_DOUBLE_EQ(Q8::from_double(-1e9).raw(), Q8::kMinRaw);
}

TEST(FixedPoint, RejectsNaN) {
  EXPECT_THROW((void)Q8::from_double(std::nan("")), PreconditionError);
}

TEST(FixedPoint, ComparisonAndMax) {
  const Q8 a = Q8::from_double(1.0);
  const Q8 b = Q8::from_double(2.0);
  EXPECT_TRUE(a < b);
  EXPECT_TRUE(b > a);
  EXPECT_TRUE(Q8::max(a, b) == b);
}

TEST(FixedPoint, IpowMatchesStdPow) {
  const PriceFixed u = PriceFixed::from_double(1.0063);
  for (std::uint64_t e : {0ull, 1ull, 7ull, 64ull, 511ull, 1024ull}) {
    const double expect = std::pow(1.0063, static_cast<double>(e));
    EXPECT_NEAR(PriceFixed::ipow(u, e).to_double() / expect, 1.0, 1e-9)
        << "e = " << e;
  }
}

TEST(FixedPoint, PriceFormatCoversTheDocumentedTreeRange) {
  // Extreme leaf of an N = 1024, sigma = 0.20 tree (the paper's market
  // regime): S0 * u^1024 ~ 600x the spot — inside Q17.46's 17 integer
  // bits, as documented on PriceFixed.
  const double u = std::exp(0.20 * std::sqrt(1.0 / 1024.0));
  const double extreme = 100.0 * std::pow(u, 1024);
  EXPECT_LT(extreme, std::ldexp(1.0, PriceFixed::kIntBits));
  EXPECT_NEAR(PriceFixed::from_double(extreme).to_double() / extreme, 1.0,
              1e-10);
}

TEST(FixedPoint, SaturatesGracefullyBeyondTheFormatEnvelope) {
  // sigma = 0.6 at N = 1024 produces ~2e10 extreme leaves — outside any
  // 64-bit Q format. The documented behaviour is saturation, not wrap:
  // the custom-data-type route needs per-workload format engineering,
  // which is exactly the development-cost argument of Section V-B.
  const double u = std::exp(0.60 * std::sqrt(1.0 / 1024.0));
  const double extreme = 100.0 * std::pow(u, 1024);
  EXPECT_GT(extreme, std::ldexp(1.0, PriceFixed::kIntBits));
  EXPECT_DOUBLE_EQ(PriceFixed::from_double(extreme).raw(), PriceFixed::kMaxRaw);
}

TEST(FixedOpCost, MultiplierTilesDsps) {
  // 64-bit multiplier: ceil(64/18)^2 = 16 DSP elements.
  EXPECT_DOUBLE_EQ(fixed_op_cost(OpKind::kFMul, 64).dsp18, 16.0);
  EXPECT_DOUBLE_EQ(fixed_op_cost(OpKind::kFMul, 36).dsp18, 4.0);
  EXPECT_DOUBLE_EQ(fixed_op_cost(OpKind::kFMul, 18).dsp18, 1.0);
}

TEST(FixedOpCost, AddsAreDspFreeAndCheap) {
  const OpCost add = fixed_op_cost(OpKind::kFAdd, 64);
  EXPECT_DOUBLE_EQ(add.dsp18, 0.0);
  EXPECT_LT(add.aluts, op_cost(OpKind::kFAdd, Precision::kDouble).aluts);
}

TEST(FixedOpCost, ValidatesWidth) {
  EXPECT_THROW((void)fixed_op_cost(OpKind::kFMul, 4), PreconditionError);
  EXPECT_THROW((void)fixed_op_cost(OpKind::kFMul, 128), PreconditionError);
}

}  // namespace
}  // namespace binopt::fpga
