// Tests of the reduced-precision math modelling the Altera 13.0 Power
// operator: accurate enough to price, inaccurate enough to reproduce the
// paper's RMSE defect, with error growing with the pow exponent.
#include "fpga/approx_math.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"

namespace binopt::fpga {
namespace {

TEST(ApproxLog2, ExactAtPowersOfTwo) {
  for (int k = -8; k <= 8; ++k) {
    EXPECT_NEAR(approx_log2(std::ldexp(1.0, k)), static_cast<double>(k), 1e-12)
        << "k = " << k;
  }
}

TEST(ApproxLog2, SmallBoundedErrorOnMantissaRange) {
  for (double x = 1.0; x < 2.0; x += 0.01) {
    EXPECT_NEAR(approx_log2(x), std::log2(x), 5e-5) << "x = " << x;
  }
}

TEST(ApproxLog2, DomainErrors) {
  EXPECT_THROW((void)approx_log2(0.0), PreconditionError);
  EXPECT_THROW((void)approx_log2(-1.0), PreconditionError);
}

TEST(ApproxExp2, ExactAtIntegers) {
  for (int k = -10; k <= 10; ++k) {
    EXPECT_NEAR(approx_exp2(static_cast<double>(k)) / std::ldexp(1.0, k), 1.0,
                1e-12);
  }
}

TEST(ApproxExp2, RelativeErrorInOperatorClass) {
  // The defective operator class: relative error up to a few 1e-5 —
  // noticeably worse than double (1e-16) but not garbage.
  double worst = 0.0;
  for (double x = -6.0; x <= 6.0; x += 0.0137) {
    const double rel = std::abs(approx_exp2(x) / std::exp2(x) - 1.0);
    worst = std::max(worst, rel);
  }
  EXPECT_LT(worst, 1e-4);
  EXPECT_GT(worst, 1e-7);  // must NOT be double-accurate
}

TEST(ApproxExp2, RangeGuards) {
  EXPECT_THROW((void)approx_exp2(2000.0), PreconditionError);
  EXPECT_THROW((void)approx_exp2(-2000.0), PreconditionError);
}

TEST(ApproxPow, ExactCases) {
  EXPECT_DOUBLE_EQ(approx_pow(3.7, 0.0), 1.0);
  EXPECT_NEAR(approx_pow(2.0, 10.0), 1024.0, 1024.0 * 1e-4);
  EXPECT_NEAR(approx_pow(4.0, 0.5), 2.0, 2.0 * 1e-4);
}

TEST(ApproxPow, ErrorGrowsWithExponentMagnitude) {
  // The paper's mechanism: pow(u, 2k - N) with u near 1 and exponents up
  // to N. The log error is multiplied by the exponent, so the relative
  // error at |e| = 1000 must exceed the error at |e| = 10.
  const double u = 1.0063;  // a typical CRR up factor at N = 1024
  auto rel_err = [&](double e) {
    return std::abs(approx_pow(u, e) / std::pow(u, e) - 1.0);
  };
  EXPECT_GT(rel_err(1000.0) + rel_err(-1000.0),
            rel_err(10.0) + rel_err(-10.0));
  EXPECT_LT(rel_err(1000.0), 1e-2);  // still usable
}

TEST(ApproxPow, MatchesStdPowToOperatorAccuracy) {
  for (double base : {0.5, 0.99, 1.0063, 1.5, 7.3}) {
    for (double e : {-700.0, -33.3, -1.0, 0.25, 2.0, 512.0}) {
      const double expect = std::pow(base, e);
      if (!std::isfinite(expect) || expect == 0.0) continue;
      EXPECT_NEAR(approx_pow(base, e) / expect, 1.0, 5e-3)
          << "base " << base << " exp " << e;
    }
  }
}

TEST(ApproxPow, DomainErrors) {
  EXPECT_THROW((void)approx_pow(-2.0, 2.0), PreconditionError);
  EXPECT_THROW((void)approx_pow(0.0, 2.0), PreconditionError);
}

TEST(ApproxExpLog, NaturalVariantsRoundTrip) {
  for (double x : {0.1, 1.0, 2.718, 42.0}) {
    EXPECT_NEAR(approx_exp(approx_log(x)) / x, 1.0, 1e-4) << "x = " << x;
  }
  EXPECT_NEAR(approx_log(std::exp(1.0)), 1.0, 1e-4);
}

TEST(ApproxMathPolicy, SatisfiesPricerMathInterface) {
  EXPECT_NEAR(ApproxMath::pow(2.0, 3.0), 8.0, 8.0 * 1e-4);
  EXPECT_NEAR(ApproxMath::exp(0.0), 1.0, 1e-12);
  EXPECT_NEAR(ApproxMath::log(1.0), 0.0, 1e-12);
}

}  // namespace
}  // namespace binopt::fpga
