// Variant tests: the host-leaves fallback of kernel IV.B (the paper's
// Power-operator mitigation), European exercise through both kernels, and
// a parameterised three-way equivalence sweep (reference = kernel A =
// kernel B) across tree sizes and option types.
#include <gtest/gtest.h>

#include "common/statistics.h"
#include "finance/workload.h"
#include "kernels/kernel_a.h"
#include "kernels/kernel_b.h"
#include "ocl/platform.h"

namespace binopt::kernels {
namespace {

class VariantTest : public ::testing::Test {
protected:
  VariantTest() : platform_(ocl::Platform::make_reference_platform()) {}
  ocl::Device& fpga() { return platform_->device_by_kind(ocl::DeviceKind::kFpga); }
  std::unique_ptr<ocl::Platform> platform_;
};

TEST_F(VariantTest, HostLeavesFallbackIsExactDespiteApproxPow) {
  // The Section V-C mitigation: with host-computed leaves the FPGA build
  // must lose its Power-operator error entirely.
  const auto batch = finance::make_random_batch(10, 404);
  const std::size_t n = 64;
  const auto expected = finance::BinomialPricer(n).price_batch(batch);

  KernelBHostProgram on_device(
      fpga(), {.steps = n, .mode = MathMode::kFpgaApproxPow});
  KernelBHostProgram fallback(fpga(), {.steps = n,
                                       .mode = MathMode::kFpgaApproxPow,
                                       .host_leaves = true});
  const double rmse_device = rmse(on_device.run(batch).prices, expected);
  const double rmse_fallback = rmse(fallback.run(batch).prices, expected);
  EXPECT_GT(rmse_device, 1e-7);    // the defect is present on-device...
  EXPECT_LT(rmse_fallback, 1e-11); // ...and gone with host leaves
}

TEST_F(VariantTest, HostLeavesCostsExtraTransfersAndGlobalReads) {
  // "to the detriment of speed": the fallback ships (N+1) doubles per
  // option through PCIe and reads them back out of global memory.
  const auto batch = finance::make_random_batch(6, 405);
  const std::size_t n = 32;
  KernelBHostProgram on_device(fpga(), {.steps = n});
  KernelBHostProgram fallback(fpga(), {.steps = n, .host_leaves = true});
  const auto r_device = on_device.run(batch);
  const auto r_fallback = fallback.run(batch);
  const auto leaf_bytes = batch.size() * (n + 1) * sizeof(double);
  EXPECT_EQ(r_fallback.stats.host_to_device_bytes,
            r_device.stats.host_to_device_bytes + leaf_bytes);
  EXPECT_GT(r_fallback.stats.global_load_bytes,
            r_device.stats.global_load_bytes);
  EXPECT_EQ(r_fallback.stats.host_transfers,
            r_device.stats.host_transfers + 1);
}

TEST_F(VariantTest, FixedPointRejectsHostLeaves) {
  EXPECT_THROW((void)make_kernel_b(16, MathMode::kFixedPoint,
                                   /*host_leaves=*/true),
               PreconditionError);
}

TEST_F(VariantTest, EuropeanExerciseThroughKernelA) {
  finance::WorkloadConfig config;
  config.style = finance::ExerciseStyle::kEuropean;
  config.type = finance::OptionType::kPut;  // puts show the premium gap
  const auto batch = finance::make_random_batch(10, 406, config);
  KernelAHostProgram host(fpga(), {.steps = 32});
  const auto prices = host.run(batch).prices;
  const auto expected = finance::BinomialPricer(32).price_batch(batch);
  EXPECT_LT(max_abs_error(prices, expected), 1e-11);
}

TEST_F(VariantTest, EuropeanExerciseThroughKernelB) {
  finance::WorkloadConfig config;
  config.style = finance::ExerciseStyle::kEuropean;
  config.type = finance::OptionType::kPut;
  const auto batch = finance::make_random_batch(10, 407, config);
  KernelBHostProgram host(fpga(), {.steps = 32});
  const auto prices = host.run(batch).prices;
  const auto expected = finance::BinomialPricer(32).price_batch(batch);
  EXPECT_LT(max_abs_error(prices, expected), 1e-11);
}

TEST_F(VariantTest, EuropeanExerciseThroughFixedPointKernel) {
  finance::WorkloadConfig config;
  config.style = finance::ExerciseStyle::kEuropean;
  config.type = finance::OptionType::kPut;
  const auto batch = finance::make_random_batch(8, 408, config);
  KernelBHostProgram host(fpga(), {.steps = 32,
                                   .mode = MathMode::kFixedPoint});
  const auto prices = host.run(batch).prices;
  const auto expected = finance::BinomialPricer(32).price_batch(batch);
  EXPECT_LT(max_abs_error(prices, expected), 1e-8);
}

TEST_F(VariantTest, AmericanPremiumVisibleThroughBothKernels) {
  // The same put batch priced American vs European through the full
  // OpenCL stack must show a strictly positive early-exercise premium.
  finance::WorkloadConfig put_cfg;
  put_cfg.type = finance::OptionType::kPut;
  put_cfg.style = finance::ExerciseStyle::kAmerican;
  auto amer = finance::make_random_batch(6, 409, put_cfg);
  auto euro = amer;
  for (auto& spec : euro) spec.style = finance::ExerciseStyle::kEuropean;

  KernelBHostProgram host(fpga(), {.steps = 48});
  const auto p_amer = host.run(amer).prices;
  const auto p_euro = host.run(euro).prices;
  for (std::size_t i = 0; i < p_amer.size(); ++i) {
    EXPECT_GE(p_amer[i], p_euro[i] - 1e-12) << "option " << i;
  }
}

// --- Parameterised three-way equivalence sweep --------------------------------

struct SweepCase {
  std::size_t steps;
  finance::OptionType type;
  finance::ExerciseStyle style;
};

class EquivalenceSweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(EquivalenceSweep, ReferenceKernelAKernelBAgree) {
  const SweepCase c = GetParam();
  auto platform = ocl::Platform::make_reference_platform();
  ocl::Device& device = platform->device_by_kind(ocl::DeviceKind::kGpu);

  finance::WorkloadConfig config;
  config.type = c.type;
  config.style = c.style;
  const auto batch = finance::make_random_batch(6, 1000 + c.steps, config);
  const auto reference = finance::BinomialPricer(c.steps).price_batch(batch);

  KernelAHostProgram a(device, {.steps = c.steps});
  KernelBHostProgram b(device, {.steps = c.steps});
  EXPECT_LT(max_abs_error(a.run(batch).prices, reference), 1e-10);
  EXPECT_LT(max_abs_error(b.run(batch).prices, reference), 1e-10);
}

INSTANTIATE_TEST_SUITE_P(
    AllShapes, EquivalenceSweep,
    ::testing::Values(
        SweepCase{8, finance::OptionType::kCall, finance::ExerciseStyle::kAmerican},
        SweepCase{16, finance::OptionType::kPut, finance::ExerciseStyle::kAmerican},
        SweepCase{33, finance::OptionType::kCall, finance::ExerciseStyle::kEuropean},
        SweepCase{64, finance::OptionType::kPut, finance::ExerciseStyle::kEuropean},
        SweepCase{100, finance::OptionType::kPut, finance::ExerciseStyle::kAmerican}),
    [](const ::testing::TestParamInfo<SweepCase>& info) {
      return "N" + std::to_string(info.param.steps) +
             (info.param.type == finance::OptionType::kCall ? "Call" : "Put") +
             (info.param.style == finance::ExerciseStyle::kAmerican ? "Amer"
                                                                    : "Euro");
    });

}  // namespace
}  // namespace binopt::kernels
