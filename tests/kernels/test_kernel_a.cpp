// Functional validation of kernel IV.A on the OpenCL simulator: prices
// must match the reference software, the ping-pong pipeline must keep
// N+1 options in flight, and the traffic counters must show the paper's
// full-buffer-readback problem.
#include "kernels/kernel_a.h"

#include <gtest/gtest.h>

#include "common/statistics.h"
#include "finance/workload.h"
#include "ocl/platform.h"

namespace binopt::kernels {
namespace {

class KernelATest : public ::testing::Test {
protected:
  KernelATest() : platform_(ocl::Platform::make_reference_platform()) {}

  ocl::Device& fpga() { return platform_->device_by_kind(ocl::DeviceKind::kFpga); }
  ocl::Device& gpu() { return platform_->device_by_kind(ocl::DeviceKind::kGpu); }

  std::unique_ptr<ocl::Platform> platform_;
};

TEST_F(KernelATest, MatchesReferenceOnSmokeBatch) {
  const auto batch = finance::make_smoke_batch();
  KernelAHostProgram host(fpga(), {.steps = 64});
  const KernelAResult result = host.run(batch);
  const finance::BinomialPricer reference(64);
  const auto expected = reference.price_batch(batch);
  ASSERT_EQ(result.prices.size(), expected.size());
  EXPECT_LT(max_abs_error(result.prices, expected), 1e-10);
}

TEST_F(KernelATest, MatchesReferenceOnRandomBatch) {
  const auto batch = finance::make_random_batch(40, 99);
  KernelAHostProgram host(fpga(), {.steps = 32});
  const KernelAResult result = host.run(batch);
  const auto expected = finance::BinomialPricer(32).price_batch(batch);
  EXPECT_LT(rmse(result.prices, expected), 1e-11);
}

TEST_F(KernelATest, SingleOptionWorks) {
  const auto batch = finance::make_random_batch(1, 5);
  KernelAHostProgram host(fpga(), {.steps = 16});
  const KernelAResult result = host.run(batch);
  EXPECT_NEAR(result.prices[0], finance::BinomialPricer(16).price(batch[0]),
              1e-12);
}

TEST_F(KernelATest, FewerOptionsThanPipelineDepthWorks) {
  // 3 options through a 32-deep pipeline: mostly bubbles.
  const auto batch = finance::make_random_batch(3, 6);
  KernelAHostProgram host(fpga(), {.steps = 32});
  const KernelAResult result = host.run(batch);
  const auto expected = finance::BinomialPricer(32).price_batch(batch);
  EXPECT_LT(max_abs_error(result.prices, expected), 1e-11);
}

TEST_F(KernelATest, BatchCountIsOptionsPlusFill) {
  const auto batch = finance::make_random_batch(10, 1);
  KernelAHostProgram host(fpga(), {.steps = 16});
  const KernelAResult result = host.run(batch);
  // One option exits per batch after N-1 fill batches.
  EXPECT_EQ(result.batches, 10u + 16u - 1u);
  EXPECT_EQ(result.work_items_per_batch, interior_nodes(16));
}

TEST_F(KernelATest, FullReadbackDominatesTransferStats) {
  const auto batch = finance::make_random_batch(6, 2);
  KernelAHostProgram host(fpga(), {.steps = 16});
  const KernelAResult result = host.run(batch);
  // Every batch reads one full ping-pong V buffer back.
  const std::uint64_t expected_read =
      result.batches * pingpong_length(16) * sizeof(double);
  EXPECT_EQ(result.stats.device_to_host_bytes, expected_read);
  EXPECT_GT(result.stats.device_to_host_bytes,
            10 * result.stats.host_to_device_bytes);
}

TEST_F(KernelATest, ReducedReadsVariantShrinksTrafficNotPrices) {
  const auto batch = finance::make_random_batch(12, 3);
  KernelAHostProgram full(fpga(), {.steps = 16, .reduced_reads = false});
  const KernelAResult r_full = full.run(batch);
  KernelAHostProgram reduced(gpu(), {.steps = 16, .reduced_reads = true});
  const KernelAResult r_reduced = reduced.run(batch);

  ASSERT_EQ(r_full.prices.size(), r_reduced.prices.size());
  EXPECT_LT(max_abs_error(r_full.prices, r_reduced.prices), 1e-13);
  // The modified variant reads ~1/pingpong_length of the bytes.
  EXPECT_LT(r_reduced.stats.device_to_host_bytes * 100,
            r_full.stats.device_to_host_bytes);
}

TEST_F(KernelATest, NoBarriersInDataflowKernel) {
  const auto batch = finance::make_random_batch(4, 8);
  KernelAHostProgram host(fpga(), {.steps = 8});
  const KernelAResult result = host.run(batch);
  EXPECT_EQ(result.stats.barriers_executed, 0u);
}

TEST_F(KernelATest, WorkItemCountsMatchEnqueues) {
  const auto batch = finance::make_random_batch(5, 4);
  KernelAHostProgram host(fpga(), {.steps = 8});
  const KernelAResult result = host.run(batch);
  EXPECT_EQ(result.stats.kernels_enqueued, result.batches);
  EXPECT_EQ(result.stats.work_items_executed,
            result.batches * interior_nodes(8));
}

TEST_F(KernelATest, PutsPriceCorrectlyThroughThePipeline) {
  finance::WorkloadConfig config;
  config.type = finance::OptionType::kPut;
  const auto batch = finance::make_random_batch(15, 21, config);
  KernelAHostProgram host(fpga(), {.steps = 24});
  const KernelAResult result = host.run(batch);
  const auto expected = finance::BinomialPricer(24).price_batch(batch);
  EXPECT_LT(max_abs_error(result.prices, expected), 1e-11);
}

TEST_F(KernelATest, RunsIdenticallyOnGpuAndFpgaDevices) {
  // The OpenCL promise: same kernel, any device, same results.
  const auto batch = finance::make_random_batch(8, 31);
  KernelAHostProgram on_fpga(fpga(), {.steps = 16});
  KernelAHostProgram on_gpu(gpu(), {.steps = 16});
  const auto a = on_fpga.run(batch).prices;
  const auto b = on_gpu.run(batch).prices;
  EXPECT_LT(max_abs_error(a, b), 0.0 + 1e-15);
}

TEST_F(KernelATest, RejectsEmptyBatch) {
  KernelAHostProgram host(fpga(), {.steps = 8});
  EXPECT_THROW((void)host.run({}), PreconditionError);
}

}  // namespace
}  // namespace binopt::kernels
