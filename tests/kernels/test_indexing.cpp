#include "kernels/indexing.h"

#include <gtest/gtest.h>

namespace binopt::kernels {
namespace {

TEST(Indexing, NodeCountsMatchTriangularNumbers) {
  EXPECT_EQ(interior_nodes(1), 1u);
  EXPECT_EQ(interior_nodes(2), 3u);
  EXPECT_EQ(interior_nodes(1024), 524800u);  // the paper's "roughly 5e5"
  EXPECT_EQ(pingpong_length(2), 6u);
  EXPECT_EQ(pingpong_length(1024), 524800u + 1025u);
}

TEST(Indexing, NodeIdMatchesFigure3Layout) {
  // Figure 3's flattened tree (root-first): (0,0)=0, (1,0)=1, (1,1)=2,
  // (2,0)=3, (2,1)=4, (2,2)=5.
  EXPECT_EQ(node_id(0, 0), 0u);
  EXPECT_EQ(node_id(1, 0), 1u);
  EXPECT_EQ(node_id(1, 1), 2u);
  EXPECT_EQ(node_id(2, 0), 3u);
  EXPECT_EQ(node_id(2, 1), 4u);
  EXPECT_EQ(node_id(2, 2), 5u);
}

TEST(Indexing, LevelOfInvertsNodeId) {
  for (std::size_t t = 0; t < 80; ++t) {
    for (std::size_t k = 0; k <= t; ++k) {
      const std::size_t id = node_id(t, k);
      EXPECT_EQ(level_of(id), t) << "id " << id;
      EXPECT_EQ(k_of(id, t), k) << "id " << id;
    }
  }
}

TEST(Indexing, LevelOfHandlesLargeIds) {
  const std::size_t t = 1023;
  EXPECT_EQ(level_of(node_id(t, 0)), t);
  EXPECT_EQ(level_of(node_id(t, t)), t);
  EXPECT_EQ(level_of(node_id(t, t) + 1), t + 1);
}

TEST(Indexing, ChildAddressesAreNextLevelNeighbours) {
  for (std::size_t t = 0; t < 30; ++t) {
    for (std::size_t k = 0; k <= t; ++k) {
      const std::size_t id = node_id(t, k);
      EXPECT_EQ(down_child(id, t), node_id(t + 1, k));
      EXPECT_EQ(down_child(id, t) + 1, node_id(t + 1, k + 1));
    }
  }
}

TEST(Indexing, LastLevelChildrenLandInLeafRegion) {
  const std::size_t n = 16;
  const std::size_t nodes = interior_nodes(n);
  for (std::size_t k = 0; k < n; ++k) {
    const std::size_t id = node_id(n - 1, k);
    const std::size_t child = down_child(id, n - 1);
    EXPECT_EQ(child, nodes + k);
    EXPECT_LT(child + 1, pingpong_length(n) + 0u);
    EXPECT_LE(child + 1, nodes + n);
  }
}

TEST(Indexing, OptionInFlightPipelinesNPlusOneOptions) {
  const long long n = 8;
  // At batch b the leaves' level (t = n-1) processes option b; the root
  // (t = 0) processes option b - (n-1).
  EXPECT_EQ(option_in_flight(0, n - 1, n), 0);
  EXPECT_EQ(option_in_flight(0, 0, n), -(n - 1));
  EXPECT_EQ(option_in_flight(n - 1, 0, n), 0);
  // Exactly n distinct options touched across levels at one batch.
  long long lo = option_in_flight(20, 0, n);
  long long hi = option_in_flight(20, n - 1, n);
  EXPECT_EQ(hi - lo, n - 1);
}

}  // namespace
}  // namespace binopt::kernels
