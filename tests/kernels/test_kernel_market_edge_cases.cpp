// Market edge cases through the full OpenCL stack: continuous dividends
// (which make early exercise of American CALLS rational), negative rates
// (post-2008 reality), and the paper's literal d = e^(-sigma*dt) lattice
// convention flowing end-to-end.
#include <gtest/gtest.h>

#include "common/statistics.h"
#include "finance/binomial.h"
#include "finance/workload.h"
#include "kernels/kernel_a.h"
#include "kernels/kernel_b.h"
#include "ocl/platform.h"

namespace binopt::kernels {
namespace {

class MarketEdgeTest : public ::testing::Test {
protected:
  MarketEdgeTest() : platform_(ocl::Platform::make_reference_platform()) {}
  ocl::Device& device() {
    return platform_->device_by_kind(ocl::DeviceKind::kGpu);
  }
  std::unique_ptr<ocl::Platform> platform_;
};

finance::OptionSpec dividend_call() {
  finance::OptionSpec spec;
  spec.spot = 100.0;
  spec.strike = 95.0;
  spec.rate = 0.03;
  spec.dividend = 0.06;  // heavy payer: early exercise becomes rational
  spec.volatility = 0.20;
  spec.maturity = 1.5;
  spec.type = finance::OptionType::kCall;
  spec.style = finance::ExerciseStyle::kAmerican;
  return spec;
}

TEST_F(MarketEdgeTest, DividendCallPricesMatchReferenceThroughBothKernels) {
  const std::vector<finance::OptionSpec> batch{dividend_call()};
  const std::size_t n = 64;
  const auto expected = finance::BinomialPricer(n).price_batch(batch);

  KernelAHostProgram a(device(), {.steps = n});
  KernelBHostProgram b(device(), {.steps = n});
  EXPECT_NEAR(a.run(batch).prices[0], expected[0], 1e-11);
  EXPECT_NEAR(b.run(batch).prices[0], expected[0], 1e-11);
}

TEST_F(MarketEdgeTest, DividendCallCarriesEarlyExercisePremium) {
  // With q > r the American call is strictly worth more than the
  // European — the premium must survive the full accelerated stack.
  finance::OptionSpec amer = dividend_call();
  finance::OptionSpec euro = amer;
  euro.style = finance::ExerciseStyle::kEuropean;
  KernelBHostProgram host(device(), {.steps = 64});
  const auto prices = host.run({amer, euro}).prices;
  EXPECT_GT(prices[0], prices[1] + 1e-4);
}

TEST_F(MarketEdgeTest, NegativeRatesPriceCorrectly) {
  finance::OptionSpec spec;
  spec.spot = 100.0;
  spec.strike = 100.0;
  spec.rate = -0.01;  // EUR-style negative rates
  spec.volatility = 0.15;
  spec.maturity = 1.0;
  spec.type = finance::OptionType::kPut;
  spec.style = finance::ExerciseStyle::kAmerican;
  const std::vector<finance::OptionSpec> batch{spec};
  const std::size_t n = 64;
  const auto expected = finance::BinomialPricer(n).price_batch(batch);
  KernelAHostProgram a(device(), {.steps = n});
  KernelBHostProgram b(device(), {.steps = n});
  EXPECT_NEAR(a.run(batch).prices[0], expected[0], 1e-11);
  EXPECT_NEAR(b.run(batch).prices[0], expected[0], 1e-11);
  EXPECT_GT(expected[0], 0.0);
}

TEST_F(MarketEdgeTest, PaperLiteralConventionFlowsThroughBothKernels) {
  // d = e^(-sigma*dt) exactly as printed in the paper's Eq. 1: kernels
  // configured with the literal convention must match a reference pricer
  // using the same convention — and differ from standard CRR.
  const auto batch = finance::make_random_batch(6, 99);
  const std::size_t n = 48;
  const finance::BinomialPricer literal(
      n, finance::ParamConvention::kPaperLiteral);
  const finance::BinomialPricer crr(n);
  const auto expected = literal.price_batch(batch);

  KernelAHostProgram a(
      device(),
      {.steps = n, .convention = finance::ParamConvention::kPaperLiteral});
  KernelBHostProgram b(
      device(),
      {.steps = n,
       .mode = MathMode::kExactDouble,
       .convention = finance::ParamConvention::kPaperLiteral});
  EXPECT_LT(max_abs_error(a.run(batch).prices, expected), 1e-11);
  EXPECT_LT(max_abs_error(b.run(batch).prices, expected), 1e-11);
  // And the two conventions genuinely differ.
  EXPECT_GT(max_abs_error(expected, crr.price_batch(batch)), 1e-3);
}

TEST_F(MarketEdgeTest, ShortDatedHighVolBatchSurvives) {
  finance::WorkloadConfig config;
  config.maturity_lo = 0.02;  // ~a week
  config.maturity_hi = 0.06;
  config.vol_lo = 0.50;
  config.vol_hi = 1.20;
  const auto batch = finance::make_random_batch(12, 314, config);
  const std::size_t n = 64;
  const auto expected = finance::BinomialPricer(n).price_batch(batch);
  KernelBHostProgram host(device(), {.steps = n});
  EXPECT_LT(rmse(host.run(batch).prices, expected), 1e-11);
}

}  // namespace
}  // namespace binopt::kernels
