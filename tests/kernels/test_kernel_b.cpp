// Functional validation of kernel IV.B: exact in double mode, ~1e-3-class
// error in the FPGA approx-pow mode (the paper's accuracy finding), local
// memory + barrier structure as in Figure 4, minimal host traffic.
#include "kernels/kernel_b.h"

#include <gtest/gtest.h>

#include "common/statistics.h"
#include "finance/workload.h"
#include "fpga/approx_math.h"
#include "ocl/platform.h"

namespace binopt::kernels {
namespace {

class KernelBTest : public ::testing::Test {
protected:
  KernelBTest() : platform_(ocl::Platform::make_reference_platform()) {}

  ocl::Device& fpga() { return platform_->device_by_kind(ocl::DeviceKind::kFpga); }
  ocl::Device& gpu() { return platform_->device_by_kind(ocl::DeviceKind::kGpu); }

  std::unique_ptr<ocl::Platform> platform_;
};

TEST_F(KernelBTest, ExactModeMatchesReference) {
  const auto batch = finance::make_smoke_batch();
  KernelBHostProgram host(gpu(), {.steps = 64, .mode = MathMode::kExactDouble});
  const KernelBResult result = host.run(batch);
  const auto expected = finance::BinomialPricer(64).price_batch(batch);
  EXPECT_LT(max_abs_error(result.prices, expected), 1e-10);
}

TEST_F(KernelBTest, ExactModeMatchesReferenceOnRandomBatch) {
  const auto batch = finance::make_random_batch(24, 123);
  KernelBHostProgram host(gpu(), {.steps = 48, .mode = MathMode::kExactDouble});
  const KernelBResult result = host.run(batch);
  const auto expected = finance::BinomialPricer(48).price_batch(batch);
  EXPECT_LT(rmse(result.prices, expected), 1e-11);
}

TEST_F(KernelBTest, ApproxPowModeShowsTheFpgaAccuracyDefect) {
  const auto batch = finance::make_random_batch(24, 123);
  KernelBHostProgram exact(gpu(), {.steps = 48, .mode = MathMode::kExactDouble});
  KernelBHostProgram approx(fpga(),
                            {.steps = 48, .mode = MathMode::kFpgaApproxPow});
  const auto expected = finance::BinomialPricer(48).price_batch(batch);
  const double rmse_exact = rmse(exact.run(batch).prices, expected);
  const double rmse_approx = rmse(approx.run(batch).prices, expected);
  // The Power-operator error must dominate the exact path by orders of
  // magnitude but stay in the "usable" range the paper reports.
  EXPECT_GT(rmse_approx, 1e3 * rmse_exact);
  EXPECT_LT(rmse_approx, 1e-2);
  EXPECT_GT(rmse_approx, 1e-7);
}

TEST_F(KernelBTest, ApproxPowErrorMatchesDirectLeafSubstitution) {
  // The kernel's only inexact operation is the pow leaf initialisation,
  // so pricing from approx leaves directly must agree with the kernel.
  const auto batch = finance::make_random_batch(10, 9);
  const std::size_t n = 32;
  KernelBHostProgram approx(fpga(),
                            {.steps = n, .mode = MathMode::kFpgaApproxPow});
  const auto kernel_prices = approx.run(batch).prices;

  const finance::BinomialPricer pricer(n);
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const double direct = pricer.price_from_leaves(
        batch[i], pricer.leaf_assets_pow<fpga::ApproxMath>(batch[i]));
    EXPECT_NEAR(kernel_prices[i], direct, 1e-9) << "option " << i;
  }
}

TEST_F(KernelBTest, SingleModeErrorIsFloatClass) {
  const auto batch = finance::make_random_batch(16, 55);
  KernelBHostProgram single(gpu(), {.steps = 64, .mode = MathMode::kSingle});
  const auto expected = finance::BinomialPricer(64).price_batch(batch);
  const double e = rmse(single.run(batch).prices, expected);
  EXPECT_GT(e, 1e-9);  // clearly not double
  EXPECT_LT(e, 1e-2);  // clearly not broken
}

TEST_F(KernelBTest, FixedPointModeIsNearDoubleAccurate) {
  // The "custom data types" alternative (paper Section V-B): Q17.46 has
  // 46 fractional bits and exact binary-powering leaves, so it must beat
  // both the approximate-pow and the single-precision modes by orders of
  // magnitude while not being bit-identical to double.
  const auto batch = finance::make_random_batch(12, 61);
  const std::size_t n = 64;
  const auto expected = finance::BinomialPricer(n).price_batch(batch);
  auto measure = [&](MathMode mode) {
    KernelBHostProgram host(fpga(), {.steps = n, .mode = mode});
    return rmse(host.run(batch).prices, expected);
  };
  const double fixed = measure(MathMode::kFixedPoint);
  EXPECT_LT(fixed, 1e-8);
  EXPECT_GT(fixed, 0.0);  // quantisation is real
  EXPECT_LT(fixed, measure(MathMode::kFpgaApproxPow) / 100.0);
  EXPECT_LT(fixed, measure(MathMode::kSingle) / 100.0);
}

TEST_F(KernelBTest, FixedPointModeHandlesPuts) {
  finance::WorkloadConfig config;
  config.type = finance::OptionType::kPut;
  const auto batch = finance::make_random_batch(8, 67, config);
  KernelBHostProgram host(fpga(), {.steps = 48, .mode = MathMode::kFixedPoint});
  const auto expected = finance::BinomialPricer(48).price_batch(batch);
  EXPECT_LT(max_abs_error(host.run(batch).prices, expected), 1e-8);
}

TEST_F(KernelBTest, HostTrafficIsMinimal) {
  // The paper's three host commands: params in, kernels, results out.
  const auto batch = finance::make_random_batch(20, 77);
  KernelBHostProgram host(fpga(), {.steps = 32});
  const KernelBResult result = host.run(batch);
  EXPECT_EQ(result.stats.host_transfers, 2u);  // one write + one read
  EXPECT_EQ(result.stats.kernels_enqueued, 1u);
  EXPECT_EQ(result.stats.device_to_host_bytes, 20u * sizeof(double));
  // Unlike kernel A there is NO per-batch buffer readback.
  EXPECT_LT(result.stats.device_to_host_bytes,
            result.stats.host_to_device_bytes);
}

TEST_F(KernelBTest, WorkGroupPerOptionStructure) {
  const auto batch = finance::make_random_batch(7, 13);
  KernelBHostProgram host(fpga(), {.steps = 16});
  const KernelBResult result = host.run(batch);
  EXPECT_EQ(result.work_groups, 7u);
  EXPECT_EQ(result.stats.work_groups_executed, 7u);
  EXPECT_EQ(result.stats.work_items_executed, 7u * 16u);
}

TEST_F(KernelBTest, BarrierCountMatchesFigure4Dataflow) {
  const std::size_t n = 16;
  const auto batch = finance::make_random_batch(2, 17);
  KernelBHostProgram host(fpga(), {.steps = n});
  const KernelBResult result = host.run(batch);
  // Per work-item: 1 after leaf init + 2 per backward step.
  EXPECT_EQ(result.stats.barriers_executed, 2u * n * (1u + 2u * n));
}

TEST_F(KernelBTest, LocalMemoryCarriesTheValueRow) {
  // Local traffic grows with the tree area (N^2), global with its edge
  // (N): at N = 64 local must dwarf global — the whole point of IV.B.
  const auto batch = finance::make_random_batch(2, 19);
  KernelBHostProgram host(fpga(), {.steps = 64});
  const KernelBResult result = host.run(batch);
  EXPECT_GT(result.stats.local_load_bytes, 0u);
  EXPECT_GT(result.stats.local_store_bytes, 0u);
  EXPECT_GT(result.stats.total_local_bytes(),
            10 * result.stats.total_global_bytes());
}

TEST_F(KernelBTest, AgreesWithKernelAInExactMode) {
  const auto batch = finance::make_random_batch(9, 29);
  KernelBHostProgram b(gpu(), {.steps = 24, .mode = MathMode::kExactDouble});
  const auto b_prices = b.run(batch).prices;
  const auto expected = finance::BinomialPricer(24).price_batch(batch);
  EXPECT_LT(max_abs_error(b_prices, expected), 1e-11);
}

TEST_F(KernelBTest, PutsPriceCorrectly) {
  finance::WorkloadConfig config;
  config.type = finance::OptionType::kPut;
  const auto batch = finance::make_random_batch(12, 37, config);
  KernelBHostProgram host(gpu(), {.steps = 40});
  const auto expected = finance::BinomialPricer(40).price_batch(batch);
  EXPECT_LT(max_abs_error(host.run(batch).prices, expected), 1e-10);
}

TEST_F(KernelBTest, RejectsTreesBeyondWorkGroupLimit) {
  EXPECT_THROW(KernelBHostProgram(fpga(), {.steps = 4096}), PreconditionError);
}

TEST_F(KernelBTest, RejectsEmptyBatch) {
  KernelBHostProgram host(fpga(), {.steps = 8});
  EXPECT_THROW((void)host.run({}), PreconditionError);
}

}  // namespace
}  // namespace binopt::kernels
