// End-to-end trader workflow (the paper's Section I use case, extended):
// synthesise market chains at three expiries, invert each into an implied
// -vol curve through the accelerated batched pricer, assemble the curves
// into a surface, query it, and compute desk Greeks — everything through
// the public APIs, on the simulated FPGA accelerator.
#include <gtest/gtest.h>

#include <cmath>

#include "core/greeks_pipeline.h"
#include "core/vol_curve_pipeline.h"
#include "finance/vol_curve.h"
#include "finance/vol_surface.h"

namespace binopt {
namespace {

TEST(TraderWorkflow, ChainsToCurvesToSurfaceToGreeks) {
  const std::size_t steps = 32;   // functional-simulation friendly
  const std::size_t quotes_per_chain = 9;

  finance::OptionSpec base;
  base.spot = 100.0;
  base.rate = 0.03;
  base.type = finance::OptionType::kCall;
  base.style = finance::ExerciseStyle::kAmerican;

  finance::SmileModel smile;
  smile.base_vol = 0.20;
  smile.skew = -0.05;
  smile.smile = 0.06;

  // --- 1. One curve per expiry through the accelerated pipeline ---------
  const std::vector<double> expiries{0.5, 1.0, 2.0};
  std::vector<double> strikes;
  std::vector<double> surface_vols;

  for (double expiry : expiries) {
    finance::OptionSpec chain_base = base;
    chain_base.maturity = expiry;
    const auto quotes = finance::synthesize_chain(
        chain_base, smile, quotes_per_chain, 0.9, 1.1, steps);

    core::VolCurvePipeline::Config config;
    config.target = core::Target::kGpuKernelB;  // exact double path
    config.steps = steps;
    core::VolCurvePipeline pipeline(chain_base, config);
    const core::CurveResult curve = pipeline.solve(quotes);

    if (strikes.empty()) {
      for (const auto& p : curve.curve) strikes.push_back(p.strike);
    }
    for (const auto& point : curve.curve) {
      ASSERT_TRUE(point.converged)
          << "T=" << expiry << " K=" << point.strike;
      surface_vols.push_back(point.implied_vol);
    }
    EXPECT_GT(curve.total_pricings, quotes.size());
  }

  // NOTE: strikes differ slightly per expiry (they ladder off the
  // forward); for the surface we use the first chain's ladder — the
  // later chains' strikes are within the grid hull, which is all
  // bilinear interpolation needs.
  ASSERT_EQ(surface_vols.size(), expiries.size() * strikes.size());

  // --- 2. Surface assembly + sanity ---------------------------------------
  const finance::VolSurface surface(expiries, strikes, surface_vols);
  EXPECT_EQ(surface.calendar_arbitrage_violations(), 0u);

  // Interpolated mid-surface point is close to the generating smile.
  const double t_mid = 0.75;
  const double k_mid = 100.0;
  const double forward = base.spot * std::exp(base.rate * t_mid);
  EXPECT_NEAR(surface.interpolate(t_mid, k_mid),
              smile.vol_at(k_mid, forward), 2e-2);

  // --- 3. Desk Greeks on the 1y chain through the accelerator -------------
  std::vector<finance::OptionSpec> book;
  for (double k : strikes) {
    finance::OptionSpec spec = base;
    spec.maturity = 1.0;
    spec.strike = k;
    spec.volatility = surface.interpolate(1.0, k);
    book.push_back(spec);
  }
  core::GreeksPipeline greeks({core::Target::kGpuKernelB, steps, 1e-3, 1e-3});
  const core::BatchGreeks g = greeks.run(book);
  for (std::size_t i = 0; i < book.size(); ++i) {
    EXPECT_GT(g.price[i], 0.0);
    EXPECT_GE(g.delta[i], -1e-9);
    EXPECT_LE(g.delta[i], 1.0 + 1e-9);
    EXPECT_GT(g.vega[i], 0.0);
  }
  // Deltas fall across the strike ladder (calls).
  EXPECT_GT(g.delta.front(), g.delta.back());
}

TEST(TraderWorkflow, FpgaTargetDeliversTheSameCurveWithinOperatorError) {
  // The same chain solved on the exact GPU path and on the FPGA path
  // (defective pow): the recovered vols must agree to the 1e-3 class.
  const std::size_t steps = 32;
  finance::OptionSpec base;
  base.spot = 100.0;
  base.rate = 0.03;
  base.maturity = 1.0;
  base.type = finance::OptionType::kCall;
  base.style = finance::ExerciseStyle::kAmerican;
  const auto quotes =
      finance::synthesize_chain(base, finance::SmileModel{}, 7, 0.92, 1.08,
                                steps);

  auto solve_with = [&](core::Target target) {
    core::VolCurvePipeline::Config config;
    config.target = target;
    config.steps = steps;
    core::VolCurvePipeline pipeline(base, config);
    return pipeline.solve(quotes);
  };
  const auto gpu = solve_with(core::Target::kGpuKernelB);
  const auto fpga = solve_with(core::Target::kFpgaKernelB);
  ASSERT_EQ(gpu.curve.size(), fpga.curve.size());
  for (std::size_t i = 0; i < gpu.curve.size(); ++i) {
    EXPECT_NEAR(gpu.curve[i].implied_vol, fpga.curve[i].implied_vol, 5e-3)
        << "strike " << gpu.curve[i].strike;
  }
}

}  // namespace
}  // namespace binopt
