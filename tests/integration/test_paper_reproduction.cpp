// End-to-end reproduction assertions: the paper's Tables I and II, the
// Section V-C claims, and the Section I use-case constraints, all through
// the public APIs (fitter + clock + power for Table I; accelerator +
// evaluation for Table II).
#include <gtest/gtest.h>

#include "core/accelerator.h"
#include "core/evaluation.h"
#include "devices/calibration.h"
#include "finance/workload.h"
#include "fpga/report.h"
#include "kernels/ir_builders.h"
#include "perf/platform_models.h"

namespace binopt {
namespace {

// --- Table I ---------------------------------------------------------------

class TableITest : public ::testing::Test {
protected:
  fpga::Fitter fitter_;
  fpga::ClockModel clock_;
  fpga::PowerModel power_;
};

TEST_F(TableITest, KernelAColumnReproduces) {
  const auto ir = kernels::kernel_a_ir(1024);
  const auto opts = devices::kernel_a_published_options();
  const auto cal =
      fitter_.calibrate(ir, opts, devices::kernel_a_published_usage());
  const auto point = fpga::characterize(fitter_, clock_, power_, ir, opts, cal);

  EXPECT_NEAR(point.fit.logic_utilization, 0.99, 0.005);
  EXPECT_NEAR(point.fit.usage.registers / 1024.0, 411.0, 1.0);
  EXPECT_NEAR(point.fit.usage.memory_bits / 1024.0, 10843.0, 2.0);
  EXPECT_NEAR(point.fit.usage.m9k, 1250.0, 1.0);
  EXPECT_NEAR(point.fit.usage.dsp18, 586.0, 1.0);
  EXPECT_NEAR(point.fmax_mhz, 98.27, 0.01);
  EXPECT_NEAR(point.power.total(), 15.0, 0.05);
  EXPECT_TRUE(point.fit.fits);
}

TEST_F(TableITest, KernelBColumnReproduces) {
  const auto ir = kernels::kernel_b_ir(1024);
  const auto opts = devices::kernel_b_published_options();
  const auto cal =
      fitter_.calibrate(ir, opts, devices::kernel_b_published_usage());
  const auto point = fpga::characterize(fitter_, clock_, power_, ir, opts, cal);

  EXPECT_NEAR(point.fit.logic_utilization, 0.66, 0.005);
  EXPECT_NEAR(point.fit.usage.registers / 1024.0, 245.0, 1.0);
  EXPECT_NEAR(point.fit.usage.memory_bits / 1024.0, 7990.0, 2.0);
  EXPECT_NEAR(point.fit.usage.m9k, 1118.0, 1.0);
  EXPECT_NEAR(point.fit.usage.dsp18, 760.0, 1.0);
  EXPECT_NEAR(point.fmax_mhz, 162.62, 0.01);
  EXPECT_NEAR(point.power.total(), 17.0, 0.05);
  EXPECT_TRUE(point.fit.fits);
}

TEST_F(TableITest, ResourceTableRenders) {
  const auto ir_a = kernels::kernel_a_ir(1024);
  const auto ir_b = kernels::kernel_b_ir(1024);
  const auto pa = fpga::characterize(
      fitter_, clock_, power_, ir_a, devices::kernel_a_published_options(),
      fitter_.calibrate(ir_a, devices::kernel_a_published_options(),
                        devices::kernel_a_published_usage()));
  const auto pb = fpga::characterize(
      fitter_, clock_, power_, ir_b, devices::kernel_b_published_options(),
      fitter_.calibrate(ir_b, devices::kernel_b_published_options(),
                        devices::kernel_b_published_usage()));
  const std::string table =
      fpga::render_resource_table({pa, pb}, fitter_.device());
  EXPECT_NE(table.find("98.27"), std::string::npos);
  EXPECT_NE(table.find("162.62"), std::string::npos);
  EXPECT_NE(table.find("411 K"), std::string::npos);
  EXPECT_NE(table.find("1118"), std::string::npos);
}

// --- Table II ----------------------------------------------------------------

TEST(TableIITest, ModelledThroughputWithinFivePercentOfPaper) {
  using core::PricingAccelerator;
  using core::Target;
  const struct {
    Target target;
    double paper;
  } rows[] = {
      {Target::kFpgaKernelA, 25.0},     {Target::kGpuKernelA, 53.0},
      {Target::kFpgaKernelB, 2400.0},   {Target::kGpuKernelBSingle, 47000.0},
      {Target::kGpuKernelB, 8900.0},    {Target::kCpuReferenceSingle, 116.0},
      {Target::kCpuReference, 222.0},
  };
  for (const auto& row : rows) {
    const double modelled =
        PricingAccelerator::modelled_options_per_second(row.target, 1024);
    EXPECT_NEAR(modelled / row.paper, 1.0, 0.05)
        << core::to_string(row.target);
  }
}

TEST(TableIITest, ModelledEnergyEfficiencyWithinTenPercentOfPaper) {
  using core::PricingAccelerator;
  using core::Target;
  const struct {
    Target target;
    double paper_opj;
  } rows[] = {
      {Target::kFpgaKernelA, 1.7},    {Target::kGpuKernelA, 0.4},
      {Target::kFpgaKernelB, 140.0},  {Target::kGpuKernelBSingle, 340.0},
      {Target::kGpuKernelB, 64.0},    {Target::kCpuReference, 1.85},
      {Target::kCpuReferenceSingle, 1.0},
  };
  for (const auto& row : rows) {
    const double modelled =
        PricingAccelerator::modelled_options_per_second(row.target, 1024) /
        PricingAccelerator::modelled_power_watts(row.target);
    EXPECT_NEAR(modelled / row.paper_opj, 1.0, 0.10)
        << core::to_string(row.target);
  }
}

TEST(TableIITest, FunctionalRmseClassesMatchTheText) {
  // Section V-C: kernel IV.B on FPGA has RMSE ~1e-3 from the Power
  // operator; kernel IV.A (host leaves) and GPU builds are exact. Note
  // the paper's printed table flags IV.A-FPGA as ~1e-3, contradicting its
  // own text — we follow the text (see EXPERIMENTS.md).
  core::Table2Config config;
  config.steps = 256;        // keep the functional run quick
  config.rmse_options_b = 8;
  config.rmse_options_a = 4;
  config.rmse_steps_a = 64;
  const auto rows = core::build_table2(config);
  ASSERT_EQ(rows.size(), 7u);
  for (const auto& row : rows) {
    if (row.kernel == "Kernel IV.B" && row.platform == "FPGA") {
      EXPECT_GT(row.rmse, 1e-6);
      EXPECT_LT(row.rmse, 1e-2);
    }
    if (row.kernel == "Kernel IV.A") {
      EXPECT_LT(row.rmse, 1e-9);
    }
    if (row.platform == "GPU" && row.precision == "Double") {
      EXPECT_LT(row.rmse, 1e-9);
    }
  }
}

TEST(TableIITest, RenderingIncludesModelAndPaperRows) {
  core::Table2Config config;
  config.functional_rmse = false;
  const auto rows = core::build_table2(config);
  const std::string text = core::render_table2(rows, true);
  EXPECT_NE(text.find("Kernel IV.B"), std::string::npos);
  EXPECT_NE(text.find("[paper]"), std::string::npos);
  EXPECT_NE(text.find("Virtex 4"), std::string::npos);
  EXPECT_NE(text.find("N/A"), std::string::npos);
}

// --- Section I use case -------------------------------------------------------

TEST(UseCaseTest, BestKernelMeets2000OptionsPerSecond) {
  const double rate = core::PricingAccelerator::modelled_options_per_second(
      core::Target::kFpgaKernelB, 1024);
  EXPECT_GT(rate, 2000.0);
}

TEST(UseCaseTest, PowerBudgetIsMissedBySevenWatts) {
  // "The power that is used ... 7W more than available" (Section VI).
  const double watts = core::PricingAccelerator::modelled_power_watts(
      core::Target::kFpgaKernelB);
  EXPECT_NEAR(watts - 10.0, 7.0, 0.1);
}

TEST(UseCaseTest, LoweredClockFitsTheBudgetAndStillMeetsThroughput) {
  // Section V-C workaround: lower the kernel clock until the chip fits
  // 10 W, and check the throughput that survives.
  const fpga::PowerModel power;
  const double fmax10 = power.max_fmax_for_budget(
      fpga::PowerModel::kAnchorB_Util, fpga::PowerModel::kAnchorB_M9k, 10.0);
  ASSERT_GT(fmax10, 0.0);
  const double lanes = 8.0;
  const double occupancy = devices::kFpgaPipelineOccupancy;
  const double options_per_s = lanes * fmax10 * 1e6 * occupancy / 524800.0;
  // The paper argues the faster-than-necessary kernel leaves headroom:
  // at the 10 W clock it must still beat the 2000 options/s goal.
  EXPECT_GT(options_per_s, 1000.0);
}

TEST(UseCaseTest, PaperRowsTableIsComplete) {
  const auto rows = devices::paper_table2_rows();
  EXPECT_EQ(rows.size(), 9u);
  EXPECT_EQ(rows.back().platform, "Stratix III EP3SE260");
}

}  // namespace
}  // namespace binopt
