// PricingService behaviour: bit-identical parity with direct
// PricingAccelerator runs (also under sharding and caching), cache-hit
// determinism, per-request timeouts, backpressure under concurrent
// submitters, shard-merged stats, and drain-on-destruction. test_core is
// part of the ThreadSanitizer CI job, so every test here is also a race
// check of the service's queue/worker/cache machinery.
#include <gtest/gtest.h>

#include <chrono>
#include <future>
#include <limits>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "core/accelerator.h"
#include "core/service/pricing_service.h"
#include "finance/workload.h"
#include "ocl/faults/fault_plan.h"

namespace binopt::core {
namespace {

using namespace std::chrono_literals;

constexpr std::size_t kSteps = 64;

ServiceConfig small_config(Target target, std::size_t workers = 1) {
  ServiceConfig config;
  config.targets.assign(workers, target);
  config.steps = kSteps;
  config.max_batch = 16;
  config.linger = 0us;
  return config;
}

std::vector<double> direct_prices(Target target,
                                  const std::vector<finance::OptionSpec>& batch) {
  PricingAccelerator accelerator({target, kSteps, /*compute_rmse=*/false});
  return accelerator.run(batch).prices;
}

// --- Parity -------------------------------------------------------------

TEST(PricingService, SingleQuoteMatchesDirectRunBitwise) {
  const auto batch = finance::make_smoke_batch();
  const std::vector<double> expected = direct_prices(Target::kCpuReference, batch);

  PricingService service(small_config(Target::kCpuReference));
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const Quote quote = service.submit(batch[i]).get();
    EXPECT_EQ(quote.price, expected[i]);  // bitwise-equal doubles
    EXPECT_EQ(quote.target, Target::kCpuReference);
    EXPECT_FALSE(quote.from_cache);
  }
}

TEST(PricingService, ShardedBatchParityOnEveryKernelFamily) {
  // 3 homogeneous workers, max_batch 16, 48 options: the curve is forced
  // through multiple shards on multiple backends, and every price must
  // still equal the one direct run of the whole batch.
  const auto batch = finance::make_curve_batch(48);
  for (const Target target :
       {Target::kCpuReference, Target::kFpgaKernelB, Target::kGpuKernelA}) {
    SCOPED_TRACE(to_string(target));
    const std::vector<double> expected = direct_prices(target, batch);

    PricingService service(small_config(target, /*workers=*/3));
    const std::vector<double> got = service.submit_batch(batch).get();
    EXPECT_EQ(got, expected);

    const auto stats = service.stats();
    EXPECT_EQ(stats.options_priced, batch.size());
    EXPECT_GE(stats.batches_launched, batch.size() / service.config().max_batch);
  }
}

TEST(PricingService, CachedRepriceStaysBitIdentical) {
  // Same curve submitted twice with the cache on: the second pass is
  // served from cache and must reproduce the first pass exactly.
  const auto batch = finance::make_curve_batch(24);
  ServiceConfig config = small_config(Target::kFpgaKernelB);
  config.cache_capacity = 64;
  PricingService service(config);

  const std::vector<double> first = service.submit_batch(batch).get();
  const std::vector<double> second = service.submit_batch(batch).get();
  EXPECT_EQ(first, second);
  EXPECT_EQ(first, direct_prices(Target::kFpgaKernelB, batch));

  const auto stats = service.stats();
  EXPECT_EQ(stats.cache_hits, batch.size());    // whole second pass
  EXPECT_EQ(stats.cache_misses, batch.size());  // whole first pass
  EXPECT_EQ(stats.options_priced, batch.size());  // priced only once
}

// --- Cache --------------------------------------------------------------

TEST(PricingService, CacheHitDeterminism) {
  ServiceConfig config = small_config(Target::kCpuReference);
  config.cache_capacity = 8;
  PricingService service(config);

  finance::OptionSpec spec;
  const Quote miss = service.submit(spec).get();
  const Quote hit = service.submit(spec).get();
  EXPECT_FALSE(miss.from_cache);
  EXPECT_TRUE(hit.from_cache);
  EXPECT_EQ(hit.price, miss.price);

  const auto stats = service.stats();
  EXPECT_EQ(stats.cache_hits, 1u);
  EXPECT_EQ(stats.cache_misses, 1u);
  EXPECT_EQ(stats.batches_launched, 1u);
  EXPECT_EQ(service.cache_size(), 1u);
  EXPECT_DOUBLE_EQ(stats.cache_hit_rate(), 0.5);
}

TEST(PricingService, CacheEvictsLeastRecentlyUsed) {
  ServiceConfig config = small_config(Target::kCpuReference);
  config.cache_capacity = 2;
  PricingService service(config);

  auto spec_with_strike = [](double strike) {
    finance::OptionSpec spec;
    spec.strike = strike;
    return spec;
  };
  (void)service.submit(spec_with_strike(90.0)).get();
  (void)service.submit(spec_with_strike(100.0)).get();
  (void)service.submit(spec_with_strike(110.0)).get();  // evicts strike 90
  EXPECT_EQ(service.cache_size(), 2u);
  EXPECT_EQ(service.stats().cache_evictions, 1u);

  const Quote again = service.submit(spec_with_strike(90.0)).get();
  EXPECT_FALSE(again.from_cache);  // was evicted, repriced
}

TEST(PricingService, CacheKeySeparatesTargetsAndQuantizes) {
  finance::OptionSpec spec;
  const auto key_cpu =
      service::CacheKey::from(spec, kSteps, Target::kCpuReference);
  const auto key_fpga =
      service::CacheKey::from(spec, kSteps, Target::kFpgaKernelB);
  EXPECT_FALSE(key_cpu == key_fpga);

  finance::OptionSpec nudged = spec;
  nudged.strike += 1e-12;  // below the 1e-9 grid: same key
  EXPECT_EQ(service::CacheKey::from(nudged, kSteps, Target::kCpuReference),
            key_cpu);
  nudged.strike += 1e-6;  // above the grid: distinct key
  EXPECT_FALSE(service::CacheKey::from(nudged, kSteps,
                                       Target::kCpuReference) == key_cpu);
}

// --- Timeouts -----------------------------------------------------------

TEST(PricingService, ZeroTimeoutExpiresBeforePricing) {
  ServiceConfig config = small_config(Target::kCpuReference);
  config.linger = 2000us;  // hold the batch open past the deadline
  PricingService service(config);

  auto expired = service.submit(finance::OptionSpec{}, 0ms);
  EXPECT_THROW((void)expired.get(), ServiceTimeoutError);
  EXPECT_EQ(service.stats().requests_timed_out, 1u);
}

TEST(PricingService, TimeoutOnlyHitsExpiredRequests) {
  ServiceConfig config = small_config(Target::kCpuReference);
  config.linger = 2000us;
  PricingService service(config);

  auto expired = service.submit(finance::OptionSpec{}, 0ms);
  auto healthy = service.submit(finance::OptionSpec{});  // no deadline
  EXPECT_THROW((void)expired.get(), ServiceTimeoutError);
  EXPECT_GT(healthy.get().price, 0.0);

  const auto stats = service.stats();
  EXPECT_EQ(stats.requests_timed_out, 1u);
  EXPECT_EQ(stats.requests_completed, 1u);
  EXPECT_EQ(stats.requests_submitted, 2u);
}

TEST(PricingService, BatchTimeoutFailsWholeCurveFuture) {
  ServiceConfig config = small_config(Target::kCpuReference);
  config.linger = 2000us;
  PricingService service(config);

  const auto batch = finance::make_curve_batch(8);
  auto future = service.submit_batch(batch, 0ms);
  EXPECT_THROW((void)future.get(), ServiceTimeoutError);
  EXPECT_EQ(service.stats().requests_timed_out, batch.size());
}

// --- Backpressure & concurrency (TSan-covered) --------------------------

TEST(PricingService, BackpressureBoundsAdmissionQueue) {
  ServiceConfig config = small_config(Target::kCpuReference, /*workers=*/2);
  config.queue_capacity = 4;
  config.max_batch = 2;
  PricingService service(config);

  constexpr std::size_t kThreads = 4;
  constexpr std::size_t kPerThread = 32;
  std::vector<std::thread> submitters;
  std::atomic<std::size_t> completed{0};
  for (std::size_t t = 0; t < kThreads; ++t) {
    submitters.emplace_back([&service, &completed] {
      finance::OptionSpec spec;
      for (std::size_t i = 0; i < kPerThread; ++i) {
        spec.strike = 80.0 + static_cast<double>(i);
        if (service.submit(spec).get().price > 0.0) ++completed;
      }
    });
  }
  // The bound must hold at every instant while submitters outpace pricing.
  for (int poll = 0; poll < 50; ++poll) {
    EXPECT_LE(service.queued_requests(), config.queue_capacity);
    std::this_thread::sleep_for(100us);
  }
  for (auto& thread : submitters) thread.join();
  EXPECT_EQ(completed.load(), kThreads * kPerThread);

  const auto stats = service.stats();
  EXPECT_EQ(stats.requests_submitted, kThreads * kPerThread);
  EXPECT_EQ(stats.requests_completed, kThreads * kPerThread);
  EXPECT_EQ(stats.requests_failed, 0u);
}

TEST(PricingService, ConcurrentSubmitterParityWithShardingAndCache) {
  // The acceptance gate: >= 4 concurrent submitters, sharding across 2
  // backends, cache enabled — every returned price bit-identical to one
  // direct accelerator run of the full curve.
  const auto curve = finance::make_curve_batch(64);
  const std::vector<double> expected =
      direct_prices(Target::kCpuReference, curve);

  ServiceConfig config = small_config(Target::kCpuReference, /*workers=*/2);
  config.cache_capacity = 128;
  config.linger = 100us;
  PricingService service(config);

  constexpr std::size_t kThreads = 4;
  std::vector<std::thread> submitters;
  std::vector<int> mismatches(kThreads, 0);
  for (std::size_t t = 0; t < kThreads; ++t) {
    submitters.emplace_back([&, t] {
      // Overlapping slices: every thread reprices a stride of the curve,
      // so cache hits and fresh pricings interleave across submitters.
      for (std::size_t i = t % 2; i < curve.size(); i += 2) {
        const Quote quote = service.submit(curve[i]).get();
        if (quote.price != expected[i]) ++mismatches[t];
      }
    });
  }
  for (auto& thread : submitters) thread.join();
  for (std::size_t t = 0; t < kThreads; ++t) {
    EXPECT_EQ(mismatches[t], 0) << "submitter " << t;
  }

  const auto stats = service.stats();
  EXPECT_EQ(stats.requests_submitted, 2u * curve.size());
  EXPECT_EQ(stats.requests_completed, 2u * curve.size());
  // Every curve point was priced at least once; overlap came from cache.
  EXPECT_GE(stats.cache_hits + stats.options_priced, 2u * curve.size());
}

TEST(PricingService, DestructorDrainsAdmittedRequests) {
  std::future<std::vector<double>> future;
  const auto batch = finance::make_curve_batch(12);
  {
    ServiceConfig config = small_config(Target::kCpuReference);
    config.linger = 5000us;  // destructor must cut the linger short
    PricingService service(config);
    future = service.submit_batch(batch);
  }
  // Admitted work resolves even though the service is gone.
  EXPECT_EQ(future.get().size(), batch.size());
}

// --- Stats plumbing -----------------------------------------------------

TEST(ServiceStats, MergeMinusAndVisitorAgree) {
  service::ServiceStats a;
  a.requests_completed = 5;
  a.cache_hits = 2;
  service::ServiceStats b;
  b.requests_completed = 7;
  b.batches_launched = 3;

  service::ServiceStats sum = a;
  sum += b;
  EXPECT_EQ(sum.requests_completed, 12u);
  EXPECT_EQ(sum.minus(a), b);

  std::uint64_t visited_total = 0;
  std::size_t fields = 0;
  sum.for_each_counter([&](const char*, std::uint64_t v) {
    visited_total += v;
    ++fields;
  });
  EXPECT_EQ(visited_total, 12u + 2u + 3u);
  EXPECT_EQ(fields, 25u);  // X-macro (9 core + 9 robustness + 2 routing +
                           // 5 overload)
}

TEST(ServiceStats, PerBackendVectorsMergeCommutativelyUnderLoadSkew) {
  // Router-induced load skew: one shard served only backend 0 (its vector
  // never grew past index 0), another served only backend 2. The merged
  // totals must be bit-identical in either merge order, and a missing
  // tail must compare equal to explicit zeros.
  service::ServiceStats skewed_low;
  service::ServiceStats::bump(skewed_low.routed_by_backend, 0, 5);
  service::ServiceStats::bump(skewed_low.served_by_backend, 0, 5);
  service::ServiceStats skewed_high;
  service::ServiceStats::bump(skewed_high.routed_by_backend, 2, 7);
  service::ServiceStats::bump(skewed_high.served_by_backend, 2, 7);
  ASSERT_EQ(skewed_low.routed_by_backend.size(), 1u);   // stayed short
  ASSERT_EQ(skewed_high.routed_by_backend.size(), 3u);  // grew on demand

  service::ServiceStats low_first = skewed_low;
  low_first += skewed_high;
  service::ServiceStats high_first = skewed_high;
  high_first += skewed_low;
  EXPECT_EQ(low_first, high_first);  // merge order cannot matter
  EXPECT_EQ(low_first.routed_by_backend,
            (std::vector<std::uint64_t>{5, 0, 7}));
  EXPECT_EQ(high_first.served_by_backend,
            (std::vector<std::uint64_t>{5, 0, 7}));

  // minus() round-trips the merge with the same zero-padding rules.
  EXPECT_EQ(low_first.minus(skewed_low), skewed_high);
  EXPECT_EQ(low_first.minus(skewed_high), skewed_low);

  // {5} and {5, 0, 0} are the SAME placement.
  service::ServiceStats padded = skewed_low;
  padded.routed_by_backend = {5, 0, 0};
  padded.served_by_backend = {5, 0, 0};
  EXPECT_EQ(padded, skewed_low);
}

TEST(ServiceStats, SkewedServiceLoadMergesIdenticallyThroughStats) {
  // End-to-end skew parity: a 2-worker routed service whose traffic lands
  // lopsidedly must still satisfy the merge identities that stats()
  // promises — totals equal the sum of per-interval deltas regardless of
  // which worker served what.
  ServiceConfig config = small_config(Target::kCpuReference);
  config.targets.assign(2, Target::kCpuReference);
  config.cache_capacity = 0;
  config.router.policy = service::RouterPolicy::kLatency;
  PricingService service(config);

  const auto batch = finance::make_curve_batch(48);
  const service::ServiceStats before = service.stats();
  (void)service.submit_batch(batch).get();
  const service::ServiceStats mid = service.stats();
  (void)service.submit_batch(batch).get();
  const service::ServiceStats after = service.stats();

  // Cumulative minus earlier == the interval, element-wise on the
  // per-backend vectors too.
  service::ServiceStats replayed = before;
  replayed += mid.minus(before);
  replayed += after.minus(mid);
  EXPECT_EQ(replayed, after);
  EXPECT_EQ(after.requests_routed, 2 * batch.size());
  std::uint64_t served_total = 0;
  for (const std::uint64_t n : after.served_by_backend) served_total += n;
  EXPECT_EQ(served_total, 2 * batch.size());
}

TEST(ServiceStats, OccupancyAndHitRateHelpers) {
  service::ServiceStats stats;
  EXPECT_DOUBLE_EQ(stats.batch_occupancy(16), 0.0);
  EXPECT_DOUBLE_EQ(stats.cache_hit_rate(), 0.0);
  stats.batches_launched = 2;
  stats.options_priced = 24;
  EXPECT_DOUBLE_EQ(stats.batch_occupancy(16), 0.75);
}

TEST(PricingService, EmptyBatchResolvesImmediately) {
  PricingService service(small_config(Target::kCpuReference));
  auto future = service.submit_batch({});
  EXPECT_TRUE(future.get().empty());
}

TEST(PricingService, RejectsInvalidConfigAndSpecs) {
  ServiceConfig no_targets;
  no_targets.targets.clear();
  EXPECT_THROW(PricingService{no_targets}, PreconditionError);

  PricingService service(small_config(Target::kCpuReference));
  finance::OptionSpec bad;
  bad.volatility = -1.0;
  EXPECT_THROW((void)service.submit(bad), PreconditionError);
}

// --- Admission validation (bugfix: NaN/Inf reached llround UB) ----------

TEST(PricingService, RejectsNonFiniteSpecFieldsAtAdmission) {
  // A NaN/Inf field used to flow straight into the quote cache's
  // llround-based key quantization — undefined behaviour. Admission now
  // rejects it with a structured error naming the offending field.
  PricingService service(small_config(Target::kCpuReference));

  finance::OptionSpec nan_spot;
  nan_spot.spot = std::numeric_limits<double>::quiet_NaN();
  try {
    (void)service.submit(nan_spot);
    FAIL() << "NaN spot was admitted";
  } catch (const ServiceRejectedError& error) {
    EXPECT_EQ(error.field(), "spot");
    EXPECT_NE(std::string(error.what()).find("spot"), std::string::npos);
  }

  finance::OptionSpec inf_vol;
  inf_vol.volatility = std::numeric_limits<double>::infinity();
  try {
    (void)service.submit(inf_vol);
    FAIL() << "Inf volatility was admitted";
  } catch (const ServiceRejectedError& error) {
    EXPECT_EQ(error.field(), "volatility");
  }

  finance::OptionSpec neg_inf_rate;
  neg_inf_rate.rate = -std::numeric_limits<double>::infinity();
  EXPECT_THROW((void)service.submit(neg_inf_rate), ServiceRejectedError);
  // ServiceRejectedError is a PreconditionError, so existing callers that
  // catch the base class keep working.
  EXPECT_THROW((void)service.submit(nan_spot), PreconditionError);

  // Nothing reached the workers or the stats.
  EXPECT_EQ(service.stats().requests_submitted, 0u);

  // A finite spec still prices normally afterwards.
  EXPECT_GT(service.submit(finance::OptionSpec{}).get().price, 0.0);
}

TEST(PricingService, RejectsBatchContainingNonFiniteSpec) {
  PricingService service(small_config(Target::kCpuReference));
  auto batch = finance::make_curve_batch(8);
  batch[5].maturity = std::numeric_limits<double>::quiet_NaN();
  try {
    (void)service.submit_batch(batch);
    FAIL() << "batch with NaN maturity was admitted";
  } catch (const ServiceRejectedError& error) {
    EXPECT_EQ(error.field(), "maturity");
  }
  // Rejection happens before any request is admitted: the whole batch is
  // refused, not partially priced.
  EXPECT_EQ(service.stats().requests_submitted, 0u);
}

TEST(QuoteCache, KeyQuantizationSaturatesExtremeFiniteValues) {
  // Finite-but-huge values must not overflow llround; they saturate to the
  // int64 grid edge instead (distinct keys are not guaranteed out there,
  // deterministic keys are).
  finance::OptionSpec huge;
  huge.strike = 1e300;
  const auto key = service::CacheKey::from(huge, kSteps, Target::kCpuReference);
  EXPECT_EQ(key, service::CacheKey::from(huge, kSteps, Target::kCpuReference));

  finance::OptionSpec tiny = huge;
  tiny.strike = -1e300;
  EXPECT_FALSE(service::CacheKey::from(tiny, kSteps, Target::kCpuReference) ==
               key);
}

// --- Latency histograms -------------------------------------------------

TEST(PricingService, LatencyHistogramsTrackTraffic) {
  ServiceConfig config = small_config(Target::kCpuReference, /*workers=*/2);
  config.cache_capacity = 64;
  PricingService service(config);

  const auto batch = finance::make_curve_batch(32);
  (void)service.submit_batch(batch).get();
  (void)service.submit_batch(batch).get();  // cache replay

  const auto stats = service.stats();
  // Every decided request (completed or failed) contributes one latency
  // sample; every popped request contributes one queue-wait sample.
  EXPECT_EQ(stats.request_latency_ns.count(),
            stats.requests_completed + stats.requests_failed);
  EXPECT_EQ(stats.queue_wait_ns.count(), 2 * batch.size());
  // One occupancy sample per launched batch, summing to options priced.
  EXPECT_EQ(stats.batch_fill.count(), stats.batches_launched);
  EXPECT_EQ(stats.batch_fill.sum(), stats.options_priced);
  // Quantiles are reportable and ordered.
  EXPECT_GT(stats.request_latency_ns.p50(), 0u);
  EXPECT_LE(stats.request_latency_ns.p50(), stats.request_latency_ns.p99());
}

TEST(ServiceStats, HistogramsTravelThroughMergeAndMinus) {
  service::ServiceStats a;
  a.requests_completed = 1;
  a.request_latency_ns.record(1000);
  a.queue_wait_ns.record(10);
  service::ServiceStats b;
  b.requests_completed = 2;
  b.request_latency_ns.record(2000);
  b.batch_fill.record(16);
  b.time_to_recovery_ns.record(5'000'000);

  service::ServiceStats sum = a;
  sum += b;
  EXPECT_EQ(sum.request_latency_ns.count(), 2u);
  EXPECT_EQ(sum.request_latency_ns.sum(), 3000u);
  EXPECT_EQ(sum.queue_wait_ns.count(), 1u);
  EXPECT_EQ(sum.batch_fill.count(), 1u);
  EXPECT_EQ(sum.time_to_recovery_ns.count(), 1u);
  EXPECT_EQ(sum.minus(a), b);  // minus inverts merge, histograms included

  // The counter visitor stays counters-only: histograms are reported via
  // their own accessors, and the X-macro field count is pinned elsewhere.
  std::size_t fields = 0;
  sum.for_each_counter([&](const char*, std::uint64_t) { ++fields; });
  EXPECT_EQ(fields, 25u);
}

// --- Hot-path spine ------------------------------------------------------

TEST(PricingService, MutexAndLockFreeSpinesAgreeBitwise) {
  // The benchmark baseline (HotPath::kMutex) and the default lock-free
  // spine must produce identical prices — the spine only moves pointers.
  const auto batch = finance::make_curve_batch(48);
  const std::vector<double> expected =
      direct_prices(Target::kCpuReference, batch);

  for (const HotPath hot_path : {HotPath::kLockFree, HotPath::kMutex}) {
    ServiceConfig config = small_config(Target::kCpuReference, /*workers=*/2);
    config.hot_path = hot_path;
    PricingService service(config);
    const std::vector<double> got = service.submit_batch(batch).get();
    ASSERT_EQ(got, expected);  // bitwise-equal doubles

    std::vector<double> blocking(batch.size(), -1.0);
    service.price_batch_blocking(batch.data(), batch.size(), blocking.data());
    ASSERT_EQ(blocking, expected);
  }
}

TEST(PricingService, PriceBatchBlockingHonoursTimeouts) {
  ServiceConfig config = small_config(Target::kCpuReference);
  PricingService service(config);
  const auto batch = finance::make_curve_batch(8);
  std::vector<double> out(batch.size(), 0.0);
  EXPECT_THROW(
      service.price_batch_blocking(batch.data(), batch.size(), out.data(), 0ms),
      ServiceTimeoutError);
}

TEST(PricingService, PriceBatchBlockingRejectsInvalidSpecsUpfront) {
  PricingService service(small_config(Target::kCpuReference));
  auto batch = finance::make_curve_batch(4);
  batch[2].volatility = std::numeric_limits<double>::quiet_NaN();
  std::vector<double> out(batch.size(), 0.0);
  EXPECT_THROW(
      service.price_batch_blocking(batch.data(), batch.size(), out.data()),
      ServiceRejectedError);
}

TEST(PricingService, ShutdownMidBurstResolvesEverySubmittedFuture) {
  // 4 submitters blast 256 singles through a small-batch service, and the
  // service is destroyed while most of that burst is still queued (large
  // linger, tiny batches). Every future must resolve with a price: the
  // destructor drains admitted work instead of dropping it. Run on both
  // spines; under TSan this race-checks teardown against workers mid-burst.
  const auto batch = finance::make_curve_batch(16);
  for (const HotPath hot_path : {HotPath::kLockFree, HotPath::kMutex}) {
    std::vector<std::future<Quote>> futures[4];
    {
      ServiceConfig config = small_config(Target::kCpuReference, /*workers=*/2);
      config.hot_path = hot_path;
      config.max_batch = 4;
      config.linger = 2000us;
      PricingService service(config);
      std::vector<std::thread> submitters;
      for (int t = 0; t < 4; ++t) {
        submitters.emplace_back([&, t] {
          for (int i = 0; i < 64; ++i) {
            futures[t].push_back(service.submit(batch[i % batch.size()]));
          }
        });
      }
      for (auto& thread : submitters) thread.join();
      // Destructor runs here, with the bulk of the burst still queued.
    }
    for (auto& per_thread : futures) {
      ASSERT_EQ(per_thread.size(), 64u);
      for (auto& future : per_thread) {
        EXPECT_GT(future.get().price, 0.0);
      }
    }
  }
}

// --- Overload layer (DESIGN.md §2.10) -----------------------------------

/// Overload scaffolding: kernel B launches exactly one NDRange per
/// accelerator run, so a `stall@N,ms=X` fault clause pins the single
/// worker inside launch N for a known wall-clock window while the test
/// shapes the admission queue behind it.
ServiceConfig stalled_config(const std::string& plan,
                             std::size_t queue_capacity,
                             std::size_t max_batch = 1) {
  ServiceConfig config;
  config.targets.assign(1, Target::kFpgaKernelB);
  config.steps = kSteps;
  config.max_batch = max_batch;
  config.linger = 0us;
  config.queue_capacity = queue_capacity;
  config.worker_fault_plans.push_back(ocl::faults::parse_fault_plan(plan));
  return config;
}

/// Polls until the worker has collected everything queued — the stalled
/// launch is then in flight and the admission queue is empty.
void wait_until_collected(const PricingService& service) {
  while (service.queued_requests() != 0) std::this_thread::sleep_for(100us);
}

TEST(ServiceOverload, SubmitterParkedOnFullQueueHonorsItsOwnDeadline) {
  // Regression for the blocked-submitter fix: a submitter parked on a
  // FULL admission queue used to wait for a slot indefinitely, honouring
  // its deadline only after admission. It must give up at its own
  // deadline, settle with ServiceTimeoutError, and never consume the
  // queue slot it was waiting for. Works with the overload layer
  // DISARMED — the deadline gate is part of the base admission path.
  const auto batch = finance::make_curve_batch(4);
  PricingService service(
      stalled_config("stall@1,ms=400", /*queue_capacity=*/1));

  auto stalled = service.submit(batch[0], kNoTimeout);
  wait_until_collected(service);  // launch 1 is now stalled for ~400ms
  auto parked = service.submit(batch[1], kNoTimeout);  // takes the 1 slot
  ASSERT_EQ(service.queued_requests(), 1u);

  const auto t0 = std::chrono::steady_clock::now();
  auto doomed = service.submit(batch[2], 60ms);
  const auto blocked_for = std::chrono::steady_clock::now() - t0;
  // Gave up at its own deadline: after ~60ms parked, well before the
  // stalled launch frees the slot at ~400ms.
  EXPECT_GE(blocked_for, 40ms);
  EXPECT_LT(blocked_for, 350ms);
  EXPECT_EQ(service.queued_requests(), 1u);  // the refusal held no slot
  EXPECT_THROW((void)doomed.get(), ServiceTimeoutError);

  EXPECT_GT(stalled.get().price, 0.0);
  EXPECT_GT(parked.get().price, 0.0);
  const auto stats = service.stats();
  EXPECT_EQ(stats.requests_submitted, 3u);
  EXPECT_EQ(stats.requests_completed, 2u);
  EXPECT_EQ(stats.requests_timed_out, 1u);
  EXPECT_EQ(stats.admission_timeouts, 1u);
  EXPECT_EQ(stats.eager_deadline_drops, 0u);
}

TEST(ServiceOverload, ZeroTimeoutExpiresAtTheAdmissionGate) {
  // A zero-timeout deadline equals the admission stamp. The stamp itself
  // is live (equal-instant-is-live, pinned in test_overload.cpp), but by
  // the time the admission gate re-reads the clock the deadline is
  // strictly past, so the request is refused AT admission — counted in
  // admission_timeouts, never holding a queue slot, never reaching a
  // worker. Layer disarmed: the gate is part of the base path.
  PricingService service(small_config(Target::kCpuReference));
  auto expired = service.submit(finance::OptionSpec{}, 0ms);
  EXPECT_THROW((void)expired.get(), ServiceTimeoutError);
  const auto stats = service.stats();
  EXPECT_EQ(stats.requests_submitted, 1u);
  EXPECT_EQ(stats.requests_timed_out, 1u);
  EXPECT_EQ(stats.admission_timeouts, 1u);
  EXPECT_EQ(stats.options_priced, 0u);
  EXPECT_EQ(stats.batches_launched, 0u);
}

TEST(ServiceOverload, ShedsBatchThenNormalAtTheirWatermarks) {
  // Static watermark 0.5 on a 4-deep queue: kBatch sheds at occupancy 2,
  // kNormal at the midpoint threshold 3, kRealtime never sheds (it would
  // block only at 4). Each refusal is typed and carries the exact
  // occupancy/threshold pair the decision was made with.
  const auto batch = finance::make_curve_batch(8);
  ServiceConfig config =
      stalled_config("stall@1,ms=600", /*queue_capacity=*/4);
  config.overload.shed_watermark = 0.5;
  PricingService service(config);

  std::vector<std::future<Quote>> admitted;
  admitted.push_back(
      service.submit(batch[0], kNoTimeout, 0, Priority::kRealtime));
  wait_until_collected(service);  // worker stalled; the queue is ours
  for (int i = 1; i <= 2; ++i) {  // occupancy 1, then 2
    admitted.push_back(
        service.submit(batch[i], kNoTimeout, 0, Priority::kRealtime));
  }

  try {
    (void)service.submit(batch[3], kNoTimeout, 0, Priority::kBatch);
    FAIL() << "kBatch must shed at occupancy 2";
  } catch (const ServiceOverloadError& error) {
    EXPECT_EQ(error.priority(), Priority::kBatch);
    EXPECT_EQ(error.occupancy(), 2u);
    EXPECT_EQ(error.threshold(), 2u);
  }
  // kNormal's threshold sits midway between watermark and capacity:
  // admitted at occupancy 2...
  admitted.push_back(
      service.submit(batch[4], kNoTimeout, 0, Priority::kNormal));
  // ...refused at 3.
  try {
    (void)service.submit(batch[5], kNoTimeout, 0, Priority::kNormal);
    FAIL() << "kNormal must shed at occupancy 3";
  } catch (const ServiceOverloadError& error) {
    EXPECT_EQ(error.priority(), Priority::kNormal);
    EXPECT_EQ(error.occupancy(), 3u);
    EXPECT_EQ(error.threshold(), 3u);
  }
  EXPECT_THROW(
      (void)service.submit(batch[6], kNoTimeout, 0, Priority::kBatch),
      ServiceOverloadError);
  // kRealtime still admits at occupancy 3: only a FULL queue blocks it.
  admitted.push_back(
      service.submit(batch[7], kNoTimeout, 0, Priority::kRealtime));

  for (auto& future : admitted) EXPECT_GT(future.get().price, 0.0);
  const auto stats = service.stats();
  EXPECT_EQ(stats.requests_submitted, 5u);
  EXPECT_EQ(stats.requests_completed, 5u);
  EXPECT_EQ(stats.requests_shed_batch, 2u);
  EXPECT_EQ(stats.requests_shed_normal, 1u);
  EXPECT_EQ(stats.admission_timeouts, 0u);
}

TEST(ServiceOverload, ExpiredRequestsAreEagerlyDroppedNotPriced) {
  // Three requests expire in the queue behind a stalled launch. With the
  // layer armed they must be dropped at collection — before ever holding
  // an accelerator batch slot — not priced and then failed.
  const auto batch = finance::make_curve_batch(4);
  ServiceConfig config = stalled_config("stall@1,ms=300",
                                        /*queue_capacity=*/8,
                                        /*max_batch=*/16);
  config.overload.shed_watermark = 1.0;  // arm the layer; never sheds at 8
  PricingService service(config);

  auto blocker = service.submit(batch[0], kNoTimeout);
  wait_until_collected(service);
  std::vector<std::future<Quote>> doomed;
  for (int i = 1; i <= 3; ++i) {
    doomed.push_back(service.submit(batch[i], 50ms));
  }

  EXPECT_GT(blocker.get().price, 0.0);
  for (auto& future : doomed) {
    EXPECT_THROW((void)future.get(), ServiceTimeoutError);
  }
  const auto stats = service.stats();
  EXPECT_EQ(stats.eager_deadline_drops, 3u);
  EXPECT_EQ(stats.requests_timed_out, 3u);
  EXPECT_EQ(stats.admission_timeouts, 0u);
  // The drops never occupied a batch slot: only the blocker was priced.
  EXPECT_EQ(stats.options_priced, 1u);
  EXPECT_EQ(stats.batches_launched, 1u);
  EXPECT_EQ(stats.requests_completed, 1u);
}

TEST(ServiceOverload, EdfCollectionServesTheEarliestDeadlineFirst) {
  // Launches 1-3 each stall 200ms, so the three requests queued behind
  // the blocker are priced one per ~200ms window. FIFO order would reach
  // the 500ms-deadline request last (~600ms — dead); EDF must pick it
  // first (~400ms — live). Its survival IS the ordering assertion.
  const auto batch = finance::make_curve_batch(4);
  ServiceConfig config =
      stalled_config("stall@1x3,ms=200", /*queue_capacity=*/8);
  config.hot_path = HotPath::kMutex;  // deque spine: EDF pop can reorder
  config.overload.shed_watermark = 1.0;
  PricingService service(config);

  auto blocker = service.submit(batch[0], kNoTimeout);
  wait_until_collected(service);
  auto fifo_head = service.submit(batch[1], kNoTimeout);
  auto late = service.submit(batch[2], 10'000ms);
  auto early = service.submit(batch[3], 500ms);  // FIFO tail, EDF head

  EXPECT_GT(early.get().price, 0.0);  // times out if collection is FIFO
  EXPECT_GT(late.get().price, 0.0);
  EXPECT_GT(fifo_head.get().price, 0.0);
  EXPECT_GT(blocker.get().price, 0.0);
  const auto stats = service.stats();
  EXPECT_EQ(stats.requests_completed, 4u);
  EXPECT_EQ(stats.requests_timed_out, 0u);
  EXPECT_EQ(stats.eager_deadline_drops, 0u);
}

TEST(ServiceOverload, BrownoutPricesBatchClassOnTheCheaperSiblingBitwise) {
  // With the queue held exactly at the watermark behind a stalled launch,
  // the next collected batch triggers brownout: kBatch work is priced by
  // the single-precision sibling at half the lattice steps and stamped
  // with the calibrated RMSE bound. Brownout trades accuracy, never
  // determinism — every browned price must be bitwise-identical to a
  // direct run of the cheaper configuration.
  const auto batch = finance::make_curve_batch(9);
  ServiceConfig config;
  config.targets.assign(1, Target::kGpuKernelB);  // has a single-prec sibling
  config.steps = kSteps;
  config.max_batch = 16;
  config.linger = 0us;
  config.queue_capacity = 8;
  config.worker_fault_plans.push_back(
      ocl::faults::parse_fault_plan("stall@1,ms=250"));
  config.overload.shed_watermark = 1.0;  // watermark == capacity == 8
  config.overload.brownout = true;
  PricingService service(config);

  auto blocker = service.submit(batch[0], kNoTimeout, 0, Priority::kRealtime);
  wait_until_collected(service);
  std::vector<std::future<Quote>> browned;
  for (std::size_t i = 1; i <= 8; ++i) {  // fill to the watermark
    browned.push_back(
        service.submit(batch[i], kNoTimeout, 0, Priority::kBatch));
  }

  // kRealtime is never browned, whatever the pressure around it.
  const Quote full = blocker.get();
  EXPECT_FALSE(full.browned_out);
  EXPECT_EQ(full.accuracy_bound, 0.0);
  EXPECT_EQ(full.price, direct_prices(Target::kGpuKernelB, {batch[0]})[0]);

  PricingAccelerator cheap(
      {Target::kGpuKernelBSingle, kSteps / 2, /*compute_rmse=*/false});
  for (std::size_t i = 0; i < browned.size(); ++i) {
    const Quote quote = browned[i].get();
    EXPECT_TRUE(quote.browned_out);
    EXPECT_GT(quote.accuracy_bound, 0.0);
    EXPECT_EQ(quote.target, Target::kGpuKernelBSingle);
    EXPECT_EQ(quote.price, cheap.run({batch[i + 1]}).prices[0]);  // bitwise
  }
  const auto stats = service.stats();
  EXPECT_EQ(stats.brownout_completions, 8u);
  EXPECT_EQ(stats.requests_completed, 9u);
}

TEST(ServiceOverload, DisabledLayerIsTheNullPath) {
  // Overload off (the default): priority classes are carried but never
  // acted on. A kBatch-tagged run and an untagged run of the same
  // workload must produce bitwise-identical prices and identical
  // counters, and every overload counter stays zero.
  const auto batch = finance::make_curve_batch(24);
  const ServiceConfig config = small_config(Target::kCpuReference);
  PricingService tagged(config);
  PricingService untagged(config);

  std::vector<double> tagged_prices;
  std::vector<double> untagged_prices;
  for (const auto& spec : batch) {
    tagged_prices.push_back(
        tagged.submit(spec, kNoTimeout, 0, Priority::kBatch).get().price);
    untagged_prices.push_back(untagged.submit(spec).get().price);
  }
  EXPECT_EQ(tagged_prices, untagged_prices);
  EXPECT_EQ(tagged_prices, direct_prices(Target::kCpuReference, batch));

  const auto a = tagged.stats();
  const auto b = untagged.stats();
  a.for_each_counter([&](const char* name, std::uint64_t value) {
    SCOPED_TRACE(name);
    std::uint64_t other = 0;
    b.for_each_counter([&](const char* other_name, std::uint64_t v) {
      if (std::string_view{name} == other_name) other = v;
    });
    EXPECT_EQ(value, other);
  });
  EXPECT_EQ(a.requests_completed, batch.size());
  EXPECT_EQ(a.requests_shed_batch, 0u);
  EXPECT_EQ(a.requests_shed_normal, 0u);
  EXPECT_EQ(a.admission_timeouts, 0u);
  EXPECT_EQ(a.eager_deadline_drops, 0u);
  EXPECT_EQ(a.brownout_completions, 0u);
}

}  // namespace
}  // namespace binopt::core
