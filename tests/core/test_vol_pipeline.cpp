#include "core/vol_curve_pipeline.h"

#include <gtest/gtest.h>

#include <cmath>

#include "finance/vol_curve.h"

namespace binopt::core {
namespace {

finance::OptionSpec base_option() {
  finance::OptionSpec spec;
  spec.spot = 100.0;
  spec.rate = 0.04;
  spec.maturity = 1.0;
  spec.type = finance::OptionType::kCall;
  spec.style = finance::ExerciseStyle::kAmerican;
  return spec;
}

TEST(VolCurvePipeline, RecoversSmileThroughAcceleratedPricer) {
  const finance::OptionSpec base = base_option();
  finance::SmileModel smile;
  smile.base_vol = 0.25;
  smile.skew = -0.06;
  smile.smile = 0.08;
  const std::size_t steps = 32;
  const auto quotes = finance::synthesize_chain(base, smile, 15, 0.85, 1.15,
                                                steps);

  VolCurvePipeline::Config config;
  config.target = Target::kGpuKernelB;  // exact double path
  config.steps = steps;
  VolCurvePipeline pipeline(base, config);
  const CurveResult result = pipeline.solve(quotes);

  ASSERT_EQ(result.curve.size(), quotes.size());
  const double forward = 100.0 * std::exp(0.04);
  for (const auto& point : result.curve) {
    ASSERT_TRUE(point.converged) << "strike " << point.strike;
    EXPECT_NEAR(point.implied_vol, smile.vol_at(point.strike, forward), 2e-3)
        << "strike " << point.strike;
  }
  EXPECT_GT(result.solver_iterations, 5u);
  EXPECT_EQ(result.total_pricings,
            (result.solver_iterations + 2) * quotes.size());
}

TEST(VolCurvePipeline, FlagsUnattainableQuotes) {
  const auto base = base_option();
  VolCurvePipeline::Config config;
  config.target = Target::kGpuKernelB;
  config.steps = 16;
  VolCurvePipeline pipeline(base, config);
  const CurveResult result = pipeline.solve({{100.0, 1e6}});
  ASSERT_EQ(result.curve.size(), 1u);
  EXPECT_FALSE(result.curve[0].converged);
}

TEST(VolCurvePipeline, ReportsModelledCostAndLatencyTarget) {
  const auto base = base_option();
  VolCurvePipeline::Config config;
  config.target = Target::kFpgaKernelB;
  config.steps = 16;
  VolCurvePipeline pipeline(base, config);
  const auto quotes = finance::synthesize_chain(base, finance::SmileModel{},
                                                10, 0.9, 1.1, 16);
  const CurveResult result = pipeline.solve(quotes);
  EXPECT_GT(result.modelled_seconds, 0.0);
  EXPECT_GT(result.modelled_energy_joules, 0.0);
  // 10-quote chains evaluate far faster than the 1 s budget on IV.B.
  EXPECT_TRUE(result.meets_one_second_target);
}

TEST(VolCurvePipeline, ApproxPowTargetStillRecoversCurveApproximately) {
  // The paper's open question: does the defective pow spoil the use case?
  // The implied-vol error stays in the same 1e-3 class as the price error.
  const auto base = base_option();
  finance::SmileModel smile;
  const std::size_t steps = 32;
  const auto quotes =
      finance::synthesize_chain(base, smile, 9, 0.9, 1.1, steps);
  VolCurvePipeline::Config config;
  config.target = Target::kFpgaKernelB;  // approx pow
  config.steps = steps;
  VolCurvePipeline pipeline(base, config);
  const CurveResult result = pipeline.solve(quotes);
  const double forward = 100.0 * std::exp(0.04);
  for (const auto& point : result.curve) {
    EXPECT_NEAR(point.implied_vol, smile.vol_at(point.strike, forward), 2e-2);
  }
}

TEST(VolCurvePipeline, RejectsEmptyChain) {
  VolCurvePipeline::Config config;
  config.steps = 16;
  VolCurvePipeline pipeline(base_option(), config);
  EXPECT_THROW((void)pipeline.solve({}), PreconditionError);
}

}  // namespace
}  // namespace binopt::core
