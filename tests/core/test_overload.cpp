// Unit coverage for the overload layer's pure pieces (DESIGN.md §2.10):
// the deadline comparison every enforcement site shares, EDF ordering,
// the strict knob parsers (env + CLI), OverloadConfig validation, the
// deterministic priority mix, and the CoDel-style AIMD watermark
// controller driven with an explicit clock. Service-level behaviour
// (shedding, eager drops, brownout) lives in test_pricing_service.cpp.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <cstdlib>

#include "common/error.h"
#include "core/service/overload.h"

namespace binopt::core::service {
namespace {

using namespace std::chrono_literals;
using Clock = std::chrono::steady_clock;

// --- deadline semantics -------------------------------------------------

// Pinned edge: a deadline exactly equal to the observation instant is
// STILL LIVE. This is what makes a zero-timeout submission admissible at
// its own admission stamp (it expires one tick later), and it must agree
// across all four enforcement sites, which share this predicate.
TEST(DeadlineExpired, EqualInstantIsLive) {
  const auto now = Clock::now();
  EXPECT_FALSE(deadline_expired(now, now));
  EXPECT_FALSE(deadline_expired(now, now + 1ns));
  EXPECT_TRUE(deadline_expired(now, now - 1ns));
}

// --- EDF ordering -------------------------------------------------------

TEST(EdfOrdering, DeadlinedRequestsComeFirst) {
  const auto now = Clock::now();
  const EdfKey with{true, now + 1ms, now};
  const EdfKey without{false, {}, now - 1h};  // much older admission
  EXPECT_TRUE(edf_before(with, without));
  EXPECT_FALSE(edf_before(without, with));
}

TEST(EdfOrdering, EarlierDeadlineWins) {
  const auto now = Clock::now();
  const EdfKey soon{true, now + 1ms, now};
  const EdfKey later{true, now + 2ms, now - 1s};  // older but later deadline
  EXPECT_TRUE(edf_before(soon, later));
  EXPECT_FALSE(edf_before(later, soon));
}

TEST(EdfOrdering, TiesAndUndeadlinedFallBackToAdmissionOrder) {
  const auto now = Clock::now();
  const EdfKey first{true, now + 1ms, now};
  const EdfKey second{true, now + 1ms, now + 1us};
  EXPECT_TRUE(edf_before(first, second));
  EXPECT_FALSE(edf_before(second, first));
  // No deadlines anywhere: EDF degrades to exactly FIFO.
  const EdfKey fifo_a{false, {}, now};
  const EdfKey fifo_b{false, {}, now + 1us};
  EXPECT_TRUE(edf_before(fifo_a, fifo_b));
  EXPECT_FALSE(edf_before(fifo_b, fifo_a));
}

// --- knob parsers -------------------------------------------------------

TEST(ParseShedWatermark, AcceptsFractionsInZeroOneRightClosed) {
  EXPECT_DOUBLE_EQ(parse_shed_watermark("0.5"), 0.5);
  EXPECT_DOUBLE_EQ(parse_shed_watermark("1"), 1.0);
  EXPECT_DOUBLE_EQ(parse_shed_watermark("0.0625"), 0.0625);
}

TEST(ParseShedWatermark, RejectsEverythingElse) {
  EXPECT_THROW((void)parse_shed_watermark("0"), PreconditionError);
  EXPECT_THROW((void)parse_shed_watermark("-0.5"), PreconditionError);
  EXPECT_THROW((void)parse_shed_watermark("1.5"), PreconditionError);
  EXPECT_THROW((void)parse_shed_watermark("0.5x"), PreconditionError);
  EXPECT_THROW((void)parse_shed_watermark(""), PreconditionError);
  EXPECT_THROW((void)parse_shed_watermark("watermark"), PreconditionError);
}

TEST(ParseSojournTarget, AcceptsPositiveMicroseconds) {
  EXPECT_EQ(parse_sojourn_target_us("2000"), 2000us);
  EXPECT_EQ(parse_sojourn_target_us("1"), 1us);
}

TEST(ParseSojournTarget, RejectsZeroNegativeAndGarbage) {
  EXPECT_THROW((void)parse_sojourn_target_us("0"), PreconditionError);
  EXPECT_THROW((void)parse_sojourn_target_us("-5"), PreconditionError);
  EXPECT_THROW((void)parse_sojourn_target_us("2ms"), PreconditionError);
  EXPECT_THROW((void)parse_sojourn_target_us(""), PreconditionError);
  // Over the 60s ceiling: a target that long means the knob is misused.
  EXPECT_THROW((void)parse_sojourn_target_us("60000001"), PreconditionError);
}

TEST(ParsePriorityMix, AcceptsThreePercentagesSummingToHundred) {
  const PriorityMix mix = parse_priority_mix("20/30/50");
  EXPECT_EQ(mix.realtime, 20u);
  EXPECT_EQ(mix.normal, 30u);
  EXPECT_EQ(mix.batch, 50u);
  const PriorityMix all_normal = parse_priority_mix("0/100/0");
  EXPECT_EQ(all_normal.normal, 100u);
}

TEST(ParsePriorityMix, RejectsWrongArityOrSumOrGarbage) {
  EXPECT_THROW((void)parse_priority_mix("20/80"), PreconditionError);
  EXPECT_THROW((void)parse_priority_mix("20/30/51"), PreconditionError);
  EXPECT_THROW((void)parse_priority_mix("20/30/49"), PreconditionError);
  EXPECT_THROW((void)parse_priority_mix("a/b/c"), PreconditionError);
  EXPECT_THROW((void)parse_priority_mix("20/30/50/0"), PreconditionError);
  EXPECT_THROW((void)parse_priority_mix(""), PreconditionError);
  EXPECT_THROW((void)parse_priority_mix("-10/60/50"), PreconditionError);
}

TEST(PriorityMix, PickMatchesTheMixExactlyPerHundredWindow) {
  const PriorityMix mix = parse_priority_mix("20/30/50");
  std::size_t counts[kPriorityCount] = {0, 0, 0};
  for (std::uint64_t k = 300; k < 400; ++k) {  // any aligned window
    ++counts[static_cast<std::size_t>(mix.pick(k))];
  }
  EXPECT_EQ(counts[static_cast<std::size_t>(Priority::kRealtime)], 20u);
  EXPECT_EQ(counts[static_cast<std::size_t>(Priority::kNormal)], 30u);
  EXPECT_EQ(counts[static_cast<std::size_t>(Priority::kBatch)], 50u);
}

// --- OverloadConfig -----------------------------------------------------

TEST(OverloadConfig, DisabledByDefaultAndValidates) {
  const OverloadConfig config;
  EXPECT_FALSE(config.enabled());
  EXPECT_NO_THROW(config.validate());
}

TEST(OverloadConfig, ValidateRejectsBadKnobs) {
  OverloadConfig config;
  config.shed_watermark = 1.5;
  EXPECT_THROW(config.validate(), PreconditionError);
  config.shed_watermark = -0.1;
  EXPECT_THROW(config.validate(), PreconditionError);
  config.shed_watermark = 0.0;
  config.brownout = true;  // brownout without the layer armed
  EXPECT_THROW(config.validate(), PreconditionError);
  config.shed_watermark = 0.5;
  EXPECT_NO_THROW(config.validate());
  config.brownout_steps = 1;  // below the 2-step lattice minimum
  EXPECT_THROW(config.validate(), PreconditionError);
}

TEST(OverloadConfig, ApplyEnvFillsOnlyUnsetKnobs) {
  ::setenv("BINOPT_SERVICE_SHED_WATERMARK", "0.25", 1);
  ::setenv("BINOPT_SERVICE_SOJOURN_TARGET_US", "1500", 1);
  OverloadConfig from_env;
  from_env.apply_env();
  EXPECT_DOUBLE_EQ(from_env.shed_watermark, 0.25);
  EXPECT_EQ(from_env.sojourn_target, 1500us);

  OverloadConfig explicit_wins;
  explicit_wins.shed_watermark = 0.75;
  explicit_wins.sojourn_target = 4000us;
  explicit_wins.apply_env();
  EXPECT_DOUBLE_EQ(explicit_wins.shed_watermark, 0.75);
  EXPECT_EQ(explicit_wins.sojourn_target, 4000us);

  ::setenv("BINOPT_SERVICE_SHED_WATERMARK", "nonsense", 1);
  OverloadConfig bad;
  EXPECT_THROW(bad.apply_env(), PreconditionError);

  ::unsetenv("BINOPT_SERVICE_SHED_WATERMARK");
  ::unsetenv("BINOPT_SERVICE_SOJOURN_TARGET_US");
}

// --- OverloadController -------------------------------------------------

TEST(OverloadController, WatermarksDeriveFromCapacity) {
  OverloadConfig config;
  config.shed_watermark = 0.5;
  const OverloadController controller(config, 128);
  EXPECT_EQ(controller.base_watermark(), 64u);
  EXPECT_EQ(controller.batch_watermark(), 64u);
  // kNormal threshold: midpoint between the watermark and full capacity.
  EXPECT_EQ(controller.normal_watermark(), 64u + (128u - 64u + 1u) / 2u);
  EXPECT_EQ(controller.floor_watermark(), 128u / 16u);
  EXPECT_FALSE(controller.overloaded());
}

TEST(OverloadController, SojournTargetOnlyStartsFullyRelaxed) {
  OverloadConfig config;
  config.sojourn_target = 1000us;
  const OverloadController controller(config, 256);
  // No static watermark: shedding engages purely from measured delay, so
  // the base is full capacity ("never shed" until the controller says so).
  EXPECT_EQ(controller.base_watermark(), 256u);
  EXPECT_EQ(controller.batch_watermark(), 256u);
}

TEST(OverloadController, SustainedDelayTightensThenRecoveryRelaxes) {
  OverloadConfig config;
  config.shed_watermark = 0.5;
  config.sojourn_target = 1000us;   // 1ms
  config.control_interval = 100ms;
  const std::size_t capacity = 160;
  OverloadController controller(config, capacity);
  const std::size_t base = controller.base_watermark();
  const std::uint64_t over = 5'000'000;   // 5ms sojourn, above target
  const std::uint64_t under = 100'000;    // 0.1ms, below target

  auto now = Clock::now();
  controller.observe(over, now);  // opens the first interval
  now += 150ms;                   // past the interval end
  controller.observe(over, now);  // rolls over: min(over) > target
  EXPECT_LT(controller.batch_watermark(), base);
  EXPECT_TRUE(controller.overloaded());
  const std::size_t tightened = controller.batch_watermark();
  EXPECT_EQ(tightened, base - base / 4);

  // Keep the delay high: the watermark keeps shrinking but never
  // undershoots the floor.
  for (int i = 0; i < 32; ++i) {
    now += 150ms;
    controller.observe(over, now);
  }
  EXPECT_GE(controller.batch_watermark(), controller.floor_watermark());
  EXPECT_TRUE(controller.overloaded());

  // One fast-drained request per interval proves the standing queue
  // cleared: additive relax back toward the base...
  now += 150ms;
  controller.observe(under, now);
  now += 150ms;
  controller.observe(under, now);
  EXPECT_GT(controller.batch_watermark(), controller.floor_watermark());
  // ...but overloaded() only clears once FULLY relaxed (no brownout flap).
  EXPECT_TRUE(controller.overloaded());
  for (int i = 0; i < 32; ++i) {
    now += 150ms;
    controller.observe(under, now);
  }
  EXPECT_EQ(controller.batch_watermark(), base);
  EXPECT_FALSE(controller.overloaded());
}

TEST(OverloadController, StaticWatermarkNeverAdapts) {
  OverloadConfig config;
  config.shed_watermark = 0.5;  // no sojourn target: static shedding only
  OverloadController controller(config, 64);
  auto now = Clock::now();
  for (int i = 0; i < 8; ++i) {
    now += 1s;
    controller.observe(50'000'000, now);  // huge sojourns, ignored
  }
  EXPECT_EQ(controller.batch_watermark(), controller.base_watermark());
  EXPECT_FALSE(controller.overloaded());
}

TEST(PriorityToString, CoversEveryClass) {
  EXPECT_STREQ(to_string(Priority::kRealtime), "realtime");
  EXPECT_STREQ(to_string(Priority::kNormal), "normal");
  EXPECT_STREQ(to_string(Priority::kBatch), "batch");
}

}  // namespace
}  // namespace binopt::core::service
