// Chaos suite for the PricingService fault-tolerance machinery
// (DESIGN.md §2.5): per-fault-kind injection through real worker
// accelerators, asserting the two invariants the serving layer promises —
//
//   1. PARITY: every price produced under faults is bitwise identical to
//      the fault-free run of the same options on the same target
//      (retries/failovers only re-order work, never change results), and
//   2. CONSERVATION: zero lost and zero double-resolved requests — every
//      future resolves exactly once, as a price or a typed error, even
//      when a backend dies mid-batch or the service shuts down broken.
//
// test_core is part of the ThreadSanitizer CI job, so every scenario here
// also race-checks the retry/requeue/quarantine machinery with CU > 1.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/accelerator.h"
#include "core/service/pricing_service.h"
#include "finance/workload.h"
#include "ocl/faults/fault_plan.h"

namespace binopt::core {
namespace {

using namespace std::chrono_literals;
using ocl::faults::FaultPlan;
using ocl::faults::parse_fault_plan;

constexpr std::size_t kSteps = 64;

/// Kernel B launches exactly one NDRange per accelerator run, so launch
/// ordinals in a fault plan map 1:1 to service batches on this target.
constexpr Target kTarget = Target::kFpgaKernelB;

ServiceConfig chaos_config(const std::string& spec, std::size_t workers = 1) {
  ServiceConfig config;
  config.targets.assign(workers, kTarget);
  config.steps = kSteps;
  config.max_batch = 16;
  config.linger = 0us;
  // Fast, bounded chaos: retries back off in microseconds and quarantined
  // backends re-probe after ~1ms so tests converge quickly.
  config.retry.max_attempts = 10;
  config.retry.base_backoff = 100us;
  config.retry.max_backoff = 2000us;
  config.health.probe_backoff = 1000us;
  config.health.max_probe_backoff = 8000us;
  config.health.probe_successes = 2;
  for (std::size_t i = 0; i < workers; ++i) {
    config.worker_fault_plans.push_back(parse_fault_plan(spec));
  }
  return config;
}

std::vector<double> direct_prices(const std::vector<finance::OptionSpec>& batch,
                                  Target target = kTarget) {
  PricingAccelerator accelerator({target, kSteps, /*compute_rmse=*/false});
  return accelerator.run(batch).prices;
}

/// Runs `batch` through a faulted service and asserts both invariants:
/// bitwise parity with the fault-free direct run, and conservation
/// (completed == submitted, nothing failed or timed out).
service::ServiceStats assert_parity_under(const std::string& spec,
                                          std::size_t workers,
                                          std::size_t options) {
  const auto batch = finance::make_curve_batch(options);
  const std::vector<double> expected = direct_prices(batch);

  PricingService service(chaos_config(spec, workers));
  const std::vector<double> got = service.submit_batch(batch).get();
  EXPECT_EQ(got, expected);  // bitwise-equal doubles

  const auto stats = service.stats();
  EXPECT_EQ(stats.requests_submitted, options);
  EXPECT_EQ(stats.requests_completed, options);  // zero lost
  EXPECT_EQ(stats.requests_failed, 0u);
  EXPECT_EQ(stats.requests_timed_out, 0u);
  EXPECT_EQ(stats.degraded_completions, 0u);  // no silent degradation
  return stats;
}

// ---------------------------------------------------------------------------
// Per-fault-kind parity: every retryable kind converges to the fault-free
// prices with nothing lost.

TEST(Chaos, TransientLaunchFailuresRetryToParity) {
  const auto stats = assert_parity_under("transient@1x2", 1, 8);
  // Launches 1 and 2 both failed with >= 1 request aboard, and every
  // failed batch member was re-enqueued.
  EXPECT_GE(stats.retries, 2u);
  EXPECT_EQ(stats.failovers, 0u);
}

TEST(Chaos, CuDeathMidKernelRetriesToParity) {
  ServiceConfig config = chaos_config("cu-death@1,cu=1", 1);
  config.compute_units = 2;  // the parallel scheduler path, checked by TSan
  const auto batch = finance::make_curve_batch(8);
  const std::vector<double> expected = direct_prices(batch);

  PricingService service(std::move(config));
  EXPECT_EQ(service.submit_batch(batch).get(), expected);
  const auto stats = service.stats();
  EXPECT_EQ(stats.requests_completed, 8u);
  EXPECT_EQ(stats.requests_failed, 0u);
  EXPECT_GE(stats.retries, 1u);
}

TEST(Chaos, ReadErrorsRetryToParity) {
  const auto stats = assert_parity_under("read-error@1", 1, 8);
  EXPECT_GE(stats.retries, 1u);
}

TEST(Chaos, WriteErrorsRetryToParity) {
  const auto stats = assert_parity_under("write-error@1", 1, 8);
  EXPECT_GE(stats.retries, 1u);
}

TEST(Chaos, ProbabilisticTransientStormConvergesToParity) {
  // ~40% of launches fail, seeded (same schedule every run; this seed
  // fires on launch ordinal 1, so at least one retry is guaranteed). The
  // retry budget is 10 attempts; the schedule is deterministic, so this
  // cannot flake.
  const auto stats =
      assert_parity_under("transient@~40;seed=4", 1, 24);
  EXPECT_GE(stats.retries, 1u);
}

// ---------------------------------------------------------------------------
// Fatal faults: quarantine, half-open probes, recovery, failover.

TEST(Chaos, DeviceLossQuarantinesProbesAndRecovers) {
  // The sole backend's first launch is fatal: its in-flight batch fails
  // over back to the shared queue, the circuit opens, half-open probes
  // (batch limit 1) succeed twice, the circuit closes, and the remaining
  // requests drain normally — total outage visible in time_to_recovery_ns.
  const auto stats = assert_parity_under("device-lost@1", 1, 8);
  EXPECT_GE(stats.failovers, 1u);
  EXPECT_EQ(stats.quarantines_entered, 1u);
  EXPECT_EQ(stats.recoveries, 1u);
  EXPECT_GE(stats.probes_launched, 2u);
  EXPECT_GE(stats.probes_succeeded, 2u);
  EXPECT_EQ(stats.time_to_recovery_ns.count(), 1u);
  EXPECT_GE(stats.health_transitions, 2u);  // -> quarantined -> healthy
}

TEST(Chaos, FleetWideDeviceLossFailsOverAndHeals) {
  // Both shards lose their device on their first launch. Whichever worker
  // collects first fails its batch over; eventually both circuits close
  // and the full curve completes with parity on the survivors/probes.
  const auto stats = assert_parity_under("device-lost@1", 2, 24);
  EXPECT_GE(stats.failovers, 1u);
  EXPECT_GE(stats.quarantines_entered, 1u);
  EXPECT_GE(stats.recoveries, 1u);
}

TEST(Chaos, WatchdogExpiryIsFatalAndRecoverable) {
  // The first launch stalls 600ms against a 150ms watchdog: the queue
  // declares the device lost, the service quarantines and fails over,
  // probes find the healed device, and everything completes with parity.
  // The watchdog measures wall-clock time and applies to every launch, so
  // the deadline leaves generous headroom over a legitimate 6-option
  // launch (~ms, tens of ms sanitized) and the assertions tolerate an
  // extra expiry cycle rather than demanding exactly one.
  const auto stats =
      assert_parity_under("stall@1,ms=600;watchdog-ms=150", 1, 6);
  EXPECT_GE(stats.failovers, 1u);
  EXPECT_GE(stats.quarantines_entered, 1u);
  EXPECT_GE(stats.recoveries, 1u);
  EXPECT_EQ(stats.quarantines_entered, stats.recoveries);
}

// ---------------------------------------------------------------------------
// Retry-budget exhaustion: typed failure, or graceful degradation.

TEST(Chaos, ExhaustedRetriesFailWithTheFaultError) {
  ServiceConfig config = chaos_config("transient@~100", 1);
  config.retry.max_attempts = 2;
  PricingService service(std::move(config));

  auto future = service.submit(finance::OptionSpec{});
  EXPECT_THROW(future.get(), ocl::faults::TransientDeviceError);
  const auto stats = service.stats();
  EXPECT_EQ(stats.requests_failed, 1u);
  EXPECT_EQ(stats.requests_completed, 0u);
  EXPECT_GE(stats.retries, 1u);
}

TEST(Chaos, DegradesToCpuReferenceWhenTheBackendGivesUp) {
  ServiceConfig config = chaos_config("transient@~100", 1);
  config.retry.max_attempts = 2;
  config.degrade_to_cpu = true;
  PricingService service(std::move(config));

  const auto batch = finance::make_curve_batch(4);
  const std::vector<double> cpu_expected =
      direct_prices(batch, Target::kCpuReference);
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const Quote quote = service.submit(batch[i]).get();
    EXPECT_TRUE(quote.degraded);
    EXPECT_EQ(quote.target, Target::kCpuReference);  // flagged, not silent
    EXPECT_EQ(quote.price, cpu_expected[i]);
  }
  const auto stats = service.stats();
  EXPECT_EQ(stats.degraded_completions, batch.size());
  EXPECT_EQ(stats.requests_completed, batch.size());
  EXPECT_EQ(stats.requests_failed, 0u);
}

// ---------------------------------------------------------------------------
// Satellite: the absolute deadline is enforced AFTER pricing too — a
// result decided past its deadline resolves as ServiceTimeoutError, never
// as a late price.

TEST(Chaos, DeadlineEnforcedAfterPricingOnAStalledLaunch) {
  // No watchdog: the stalled launch *succeeds*, 120ms late, far past the
  // request's 30ms absolute deadline stamped at admission.
  PricingService service(chaos_config("stall@1,ms=120", 1));
  auto late = service.submit(finance::OptionSpec{}, 30ms);
  EXPECT_THROW(late.get(), ServiceTimeoutError);
  EXPECT_EQ(service.stats().requests_timed_out, 1u);

  // The stall was one-shot; an undeadlined request prices normally.
  const Quote quote = service.submit(finance::OptionSpec{}).get();
  EXPECT_EQ(quote.price,
            direct_prices({finance::OptionSpec{}}).front());
}

// ---------------------------------------------------------------------------
// Satellite: worker shutdown mid-batch. Destroying the service while a
// faulting backend still holds work must resolve EVERY admitted future —
// a price or a typed error, never a broken promise, never a hang.

TEST(Chaos, ShutdownMidChaosResolvesEveryFuture) {
  const auto batch = finance::make_curve_batch(32);
  std::vector<std::future<Quote>> futures;
  {
    ServiceConfig config = chaos_config("device-lost@~60;seed=3", 1);
    config.retry.max_attempts = 3;
    PricingService service(std::move(config));
    futures.reserve(batch.size());
    for (const auto& spec : batch) futures.push_back(service.submit(spec));
  }  // destructor drains the queue with the backend still dying

  std::size_t priced = 0;
  std::size_t errored = 0;
  for (auto& future : futures) {
    ASSERT_EQ(future.wait_for(0s), std::future_status::ready);
    try {
      (void)future.get();
      ++priced;
    } catch (const std::future_error&) {
      FAIL() << "broken promise: a request was lost in shutdown";
    } catch (const Error&) {
      ++errored;  // typed: fault, timeout, or shutdown
    }
  }
  EXPECT_EQ(priced + errored, batch.size());  // conservation
}

// ---------------------------------------------------------------------------
// Disabled-mode guarantee at the service level: an armed-but-never-firing
// plan changes nothing.

TEST(Chaos, NeverFiringPlanKeepsServiceBitIdentical) {
  const auto stats = assert_parity_under("device-lost@1000000", 1, 8);
  EXPECT_EQ(stats.retries, 0u);
  EXPECT_EQ(stats.failovers, 0u);
  EXPECT_EQ(stats.quarantines_entered, 0u);
}

// ---------------------------------------------------------------------------
// Satellite: strict config validation with actionable messages.

template <typename Fn>
void expect_rejected(Fn&& fn, const std::string& needle) {
  try {
    fn();
    FAIL() << "expected PreconditionError containing '" << needle << "'";
  } catch (const PreconditionError& error) {
    EXPECT_NE(std::string(error.what()).find(needle), std::string::npos)
        << "message was: " << error.what();
  }
}

TEST(ChaosConfig, RetryPolicyIsValidatedAtConstruction) {
  expect_rejected(
      [] {
        ServiceConfig config = chaos_config("");
        config.retry.max_attempts = 0;
        PricingService service(std::move(config));
      },
      "RetryPolicy.max_attempts must be in [1, 100]");
  expect_rejected(
      [] {
        ServiceConfig config = chaos_config("");
        config.retry.base_backoff = 0us;
        PricingService service(std::move(config));
      },
      "turns retries into a hot spin");
  expect_rejected(
      [] {
        ServiceConfig config = chaos_config("");
        config.retry.base_backoff = 500us;
        config.retry.max_backoff = 100us;
        PricingService service(std::move(config));
      },
      "must be >= base_backoff");
}

TEST(ChaosConfig, HealthPolicyIsValidatedAtConstruction) {
  expect_rejected(
      [] {
        ServiceConfig config = chaos_config("");
        config.health.degrade_after = 0;
        PricingService service(std::move(config));
      },
      "HealthPolicy.degrade_after must be >= 1");
  expect_rejected(
      [] {
        ServiceConfig config = chaos_config("");
        config.health.degrade_after = 3;
        config.health.quarantine_after = 1;
        PricingService service(std::move(config));
      },
      "cannot skip straight past degraded");
  expect_rejected(
      [] {
        ServiceConfig config = chaos_config("");
        config.health.probe_backoff = 0us;
        PricingService service(std::move(config));
      },
      "probes a dead device in a hot loop");
  expect_rejected(
      [] {
        ServiceConfig config = chaos_config("");
        config.health.probe_successes = 0;
        PricingService service(std::move(config));
      },
      "HealthPolicy.probe_successes must be >= 1");
}

TEST(ChaosConfig, WorkerFaultPlansMustMatchTargets) {
  expect_rejected(
      [] {
        ServiceConfig config = chaos_config("", /*workers=*/2);
        config.worker_fault_plans.pop_back();  // 1 plan, 2 targets
        PricingService service(std::move(config));
      },
      "exactly one plan per target");
}

TEST(ChaosConfig, MalformedFaultSpecNamesTheClause) {
  expect_rejected([] { (void)parse_fault_plan("device-lost@oops"); },
                  "must be an unsigned integer");
}

// ---------------------------------------------------------------------------
// Overload layer under chaos (DESIGN.md §2.10): deadlines interact with
// the retry machinery, and shedding composes with faults without breaking
// the conservation promise.

TEST(Chaos, DeadlineFiresBetweenRetryAttempts) {
  // The first attempt fails transiently at ~0ms and is requeued with a
  // 60ms backoff; the request's 30ms deadline fires INSIDE that backoff
  // window. With the layer armed the worker must eagerly drop the retry
  // from its backoff wait — never burn a second launch on a request that
  // is already dead.
  ServiceConfig config = chaos_config("transient@1x10", 1);
  config.retry.base_backoff = 60ms;
  config.retry.max_backoff = 120ms;
  config.overload.shed_watermark = 1.0;  // arm eager expiry
  PricingService service(std::move(config));

  auto doomed = service.submit(finance::OptionSpec{}, 30ms);
  EXPECT_THROW((void)doomed.get(), ServiceTimeoutError);

  const auto stats = service.stats();
  EXPECT_GE(stats.retries, 1u);  // the first attempt was requeued...
  EXPECT_EQ(stats.eager_deadline_drops, 1u);  // ...then dropped, unlaunched
  EXPECT_EQ(stats.requests_timed_out, 1u);
  EXPECT_EQ(stats.requests_completed, 0u);
  EXPECT_EQ(stats.requests_failed, 0u);
}

TEST(Chaos, ShedStormAccountsEveryRequestExactly) {
  // Faults and shedding together: both workers lose their device on
  // launch 1 and take transient failures later, while 4 threads push a
  // 10/45/45 priority mix through a 16-deep queue with the watermark at
  // 0.5. The conservation ledger is double-entry and EXACT: every issued
  // request is either a completion (bitwise-equal to the fault-free
  // direct run) or a typed shed the service counted — zero tolerance,
  // zero silent drops, zero timeouts, zero failures.
  constexpr std::size_t kOptions = 192;
  constexpr std::size_t kThreads = 4;
  const auto batch = finance::make_curve_batch(kOptions);
  const std::vector<double> expected = direct_prices(batch);

  ServiceConfig config = chaos_config("device-lost@1;transient@3x2;seed=7", 2);
  config.queue_capacity = 16;
  config.overload.shed_watermark = 0.5;
  const service::PriorityMix mix = service::parse_priority_mix("10/45/45");
  PricingService service(std::move(config));

  std::atomic<std::size_t> shed{0};
  std::vector<std::vector<std::pair<std::size_t, std::future<Quote>>>>
      admitted(kThreads);
  std::vector<std::thread> submitters;
  for (std::size_t t = 0; t < kThreads; ++t) {
    submitters.emplace_back([&, t] {
      const std::size_t chunk = kOptions / kThreads;
      for (std::size_t k = t * chunk; k < (t + 1) * chunk; ++k) {
        try {
          admitted[t].emplace_back(
              k, service.submit(batch[k], kNoTimeout, 0, mix.pick(k)));
        } catch (const ServiceOverloadError&) {
          shed.fetch_add(1);  // typed refusal; future never existed
        }
      }
    });
  }
  for (auto& thread : submitters) thread.join();

  std::size_t completed = 0;
  for (auto& per_thread : admitted) {
    for (auto& [index, future] : per_thread) {
      const Quote quote = future.get();  // throws on any lost request
      EXPECT_EQ(quote.price, expected[index]);  // bitwise, despite faults
      EXPECT_FALSE(quote.browned_out);
      ++completed;
    }
  }
  EXPECT_EQ(completed + shed.load(), kOptions);

  const auto stats = service.stats();
  EXPECT_EQ(stats.requests_submitted, kOptions - shed.load());
  EXPECT_EQ(stats.requests_shed_normal + stats.requests_shed_batch,
            shed.load());
  EXPECT_EQ(stats.requests_completed, completed);
  EXPECT_EQ(stats.requests_failed, 0u);
  EXPECT_EQ(stats.requests_timed_out, 0u);
  EXPECT_EQ(stats.brownout_completions, 0u);
}

}  // namespace
}  // namespace binopt::core
