// Zero-allocation gate for the service hot path (DESIGN.md §2.6).
//
// This binary replaces the global allocation operators with counting
// versions and asserts that, after warmup, a price_batch_blocking call on
// the lock-free spine performs NO heap allocation end to end: admission
// (arena slot + ring push), batching (reused worker scratch), pricing
// (BatchPricer's reused lanes), and resolution (stack SyncGroup). It is a
// separate test binary so the hooks cannot perturb the other suites or
// the ThreadSanitizer job.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <vector>

#include "core/accelerator.h"
#include "core/service/pricing_service.h"
#include "finance/workload.h"

namespace {
// Counts every path into the heap. Relaxed is fine: the test reads the
// counter only after joining/quiescing the threads whose allocations it
// wants to observe (the blocking call returns only after the worker has
// resolved every element).
std::atomic<std::uint64_t> g_heap_allocations{0};

void* counted_alloc(std::size_t size) {
  g_heap_allocations.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size ? size : 1);
}

void* counted_aligned_alloc(std::size_t size, std::size_t align) {
  g_heap_allocations.fetch_add(1, std::memory_order_relaxed);
  // aligned_alloc requires size to be a multiple of the alignment.
  const std::size_t rounded = (size + align - 1) / align * align;
  return std::aligned_alloc(align, rounded ? rounded : align);
}
}  // namespace

void* operator new(std::size_t size) {
  if (void* p = counted_alloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return counted_alloc(size);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return counted_alloc(size);
}
void* operator new(std::size_t size, std::align_val_t align) {
  if (void* p = counted_aligned_alloc(size, static_cast<std::size_t>(align))) {
    return p;
  }
  throw std::bad_alloc();
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}
void* operator new(std::size_t size, std::align_val_t align,
                   const std::nothrow_t&) noexcept {
  return counted_aligned_alloc(size, static_cast<std::size_t>(align));
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

namespace binopt::core {
namespace {

using namespace std::chrono_literals;

constexpr std::size_t kSteps = 64;
constexpr std::size_t kBatch = 64;

ServiceConfig hotpath_config(HotPath hot_path) {
  ServiceConfig config;
  config.targets = {Target::kCpuReference};
  config.steps = kSteps;
  config.max_batch = kBatch;
  config.linger = 0us;
  config.queue_capacity = 256;
  config.cache_capacity = 0;  // cache insertions allocate by design
  config.hot_path = hot_path;
  return config;
}

TEST(AllocHotPath, SteadyStateBlockingBatchMakesZeroHeapAllocations) {
  const auto specs = finance::make_curve_batch(kBatch);
  PricingAccelerator direct({Target::kCpuReference, kSteps,
                             /*compute_rmse=*/false});
  const std::vector<double> expected = direct.run(specs).prices;

  PricingService service(hotpath_config(HotPath::kLockFree));
  std::vector<double> out(specs.size(), 0.0);

  // Warmup: lazily builds the worker's BatchPricer, reserves all scratch,
  // and carves every arena slab the steady-state lease pattern touches.
  for (int i = 0; i < 200; ++i) {
    service.price_batch_blocking(specs.data(), specs.size(), out.data());
  }

  const std::uint64_t before =
      g_heap_allocations.load(std::memory_order_relaxed);
  constexpr int kMeasuredReps = 100;
  for (int i = 0; i < kMeasuredReps; ++i) {
    service.price_batch_blocking(specs.data(), specs.size(), out.data());
  }
  const std::uint64_t after =
      g_heap_allocations.load(std::memory_order_relaxed);

  // The acceptance gate: zero allocations per request in steady state —
  // submit -> ring -> batch -> price -> resolve never touches the heap.
  EXPECT_EQ(after - before, 0u)
      << (after - before) << " allocations across " << kMeasuredReps
      << " blocking batches of " << specs.size();

  // And the zero-alloc path still prices correctly (bitwise).
  ASSERT_EQ(out, expected);
}

TEST(AllocHotPath, BlockingBatchMatchesFutureApisOnBothSpines) {
  const auto specs = finance::make_curve_batch(48);
  PricingAccelerator direct({Target::kCpuReference, kSteps,
                             /*compute_rmse=*/false});
  const std::vector<double> expected = direct.run(specs).prices;

  for (const HotPath hot_path : {HotPath::kLockFree, HotPath::kMutex}) {
    PricingService service(hotpath_config(hot_path));
    std::vector<double> blocking(specs.size(), 0.0);
    service.price_batch_blocking(specs.data(), specs.size(), blocking.data());
    EXPECT_EQ(blocking, expected);

    const std::vector<double> via_future = service.submit_batch(specs).get();
    EXPECT_EQ(via_future, expected);

    const Quote quote = service.submit(specs.front()).get();
    EXPECT_EQ(quote.price, expected.front());
  }
}

TEST(AllocHotPath, ArmedOverloadLayerUnderTheWatermarkStaysZeroAlloc) {
  // Arming shedding + the sojourn controller must not cost the fast path
  // its zero-allocation guarantee: under the watermark every admission
  // adds only an atomic occupancy read, and every collection only the
  // controller's atomic bookkeeping (DESIGN.md §2.10). Sheds, drops, and
  // brownout never fire here — this is the 99% regime of an armed
  // service, and it must price exactly like the disarmed one.
  const auto specs = finance::make_curve_batch(kBatch);
  PricingAccelerator direct({Target::kCpuReference, kSteps,
                             /*compute_rmse=*/false});
  const std::vector<double> expected = direct.run(specs).prices;

  ServiceConfig config = hotpath_config(HotPath::kLockFree);
  config.overload.shed_watermark = 0.9;    // 230 of 256: never reached
  config.overload.sojourn_target = 50ms;   // never exceeded either
  PricingService service(std::move(config));
  std::vector<double> out(specs.size(), 0.0);

  for (int i = 0; i < 200; ++i) {
    service.price_batch_blocking(specs.data(), specs.size(), out.data());
  }

  const std::uint64_t before =
      g_heap_allocations.load(std::memory_order_relaxed);
  constexpr int kMeasuredReps = 100;
  for (int i = 0; i < kMeasuredReps; ++i) {
    service.price_batch_blocking(specs.data(), specs.size(), out.data());
  }
  const std::uint64_t after =
      g_heap_allocations.load(std::memory_order_relaxed);

  EXPECT_EQ(after - before, 0u)
      << (after - before) << " allocations across " << kMeasuredReps
      << " blocking batches with the overload layer armed";
  ASSERT_EQ(out, expected);  // armed != different prices

  const auto stats = service.stats();
  EXPECT_EQ(stats.requests_shed_normal, 0u);
  EXPECT_EQ(stats.requests_shed_batch, 0u);
  EXPECT_EQ(stats.eager_deadline_drops, 0u);
  EXPECT_EQ(stats.brownout_completions, 0u);
}

TEST(AllocHotPath, StatsStillTrackZeroAllocTraffic) {
  // kSync requests must feed the same counters/histograms as the
  // promise-based sinks — observability cannot be the price of zero-alloc.
  const auto specs = finance::make_curve_batch(32);
  PricingService service(hotpath_config(HotPath::kLockFree));
  std::vector<double> out(specs.size(), 0.0);
  service.price_batch_blocking(specs.data(), specs.size(), out.data());

  const auto stats = service.stats();
  EXPECT_EQ(stats.requests_submitted, specs.size());
  EXPECT_EQ(stats.requests_completed, specs.size());
  EXPECT_EQ(stats.requests_failed, 0u);
  EXPECT_EQ(stats.options_priced, specs.size());
  EXPECT_EQ(stats.request_latency_ns.count(), specs.size());
  EXPECT_EQ(stats.queue_wait_ns.count(), specs.size());
  EXPECT_GE(stats.batches_launched, 1u);
}

}  // namespace
}  // namespace binopt::core
