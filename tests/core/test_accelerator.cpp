#include "core/accelerator.h"

#include <gtest/gtest.h>

#include "common/statistics.h"
#include "finance/binomial.h"
#include "finance/workload.h"

namespace binopt::core {
namespace {

TEST(Accelerator, CpuReferencePathMatchesPricer) {
  PricingAccelerator acc({Target::kCpuReference, 64, true});
  const auto batch = finance::make_random_batch(10, 42);
  const RunReport report = acc.run(batch);
  const auto expected = finance::BinomialPricer(64).price_batch(batch);
  EXPECT_LT(max_abs_error(report.prices, expected), 1e-15);
  EXPECT_DOUBLE_EQ(report.rmse_vs_reference, 0.0);
  EXPECT_FALSE(report.device_stats.has_value());
}

TEST(Accelerator, AcceleratedTargetsReturnDeviceStats) {
  PricingAccelerator acc({Target::kFpgaKernelB, 32, true});
  const RunReport report = acc.run(finance::make_random_batch(4, 1));
  ASSERT_TRUE(report.device_stats.has_value());
  EXPECT_GT(report.device_stats->work_items_executed, 0u);
}

TEST(Accelerator, ReportCarriesConsistentModelNumbers) {
  PricingAccelerator acc({Target::kFpgaKernelB, 1024, false});
  const auto batch = finance::make_random_batch(3, 2);
  const RunReport report = acc.run(batch);
  EXPECT_NEAR(report.nodes_per_second,
              report.options_per_second * 524800.0, 1.0);
  EXPECT_NEAR(report.modelled_seconds,
              3.0 / report.options_per_second, 1e-12);
  EXPECT_NEAR(report.options_per_joule,
              report.options_per_second / report.power_watts, 1e-9);
  EXPECT_NEAR(report.energy_joules,
              report.modelled_seconds * report.power_watts, 1e-9);
}

TEST(Accelerator, EveryTargetRunsAndPricesSanely) {
  const auto batch = finance::make_random_batch(3, 3);
  const auto expected = finance::BinomialPricer(32).price_batch(batch);
  for (Target target : all_targets()) {
    PricingAccelerator acc({target, 32, true});
    const RunReport report = acc.run(batch);
    ASSERT_EQ(report.prices.size(), batch.size()) << to_string(target);
    EXPECT_LT(rmse(report.prices, expected), 1e-2) << to_string(target);
    EXPECT_GT(report.options_per_second, 0.0) << to_string(target);
    EXPECT_GT(report.power_watts, 0.0) << to_string(target);
  }
}

TEST(Accelerator, FpgaKernelBCarriesThePowDefectOthersDont) {
  const auto batch = finance::make_random_batch(8, 4);
  PricingAccelerator fpga_b({Target::kFpgaKernelB, 64, true});
  PricingAccelerator gpu_b({Target::kGpuKernelB, 64, true});
  PricingAccelerator fpga_a({Target::kFpgaKernelA, 64, true});
  const double rmse_fpga_b = fpga_b.run(batch).rmse_vs_reference;
  const double rmse_gpu_b = gpu_b.run(batch).rmse_vs_reference;
  const double rmse_fpga_a = fpga_a.run(batch).rmse_vs_reference;
  EXPECT_GT(rmse_fpga_b, 100.0 * rmse_gpu_b);
  EXPECT_GT(rmse_fpga_b, 100.0 * rmse_fpga_a);
}

TEST(Accelerator, ModelledThroughputOrderingMatchesTableII) {
  const std::size_t n = 1024;
  const double a_fpga =
      PricingAccelerator::modelled_options_per_second(Target::kFpgaKernelA, n);
  const double a_gpu =
      PricingAccelerator::modelled_options_per_second(Target::kGpuKernelA, n);
  const double ref =
      PricingAccelerator::modelled_options_per_second(Target::kCpuReference, n);
  const double b_fpga =
      PricingAccelerator::modelled_options_per_second(Target::kFpgaKernelB, n);
  const double b_gpu =
      PricingAccelerator::modelled_options_per_second(Target::kGpuKernelB, n);
  const double b_gpu_sp = PricingAccelerator::modelled_options_per_second(
      Target::kGpuKernelBSingle, n);
  // The paper's ordering: IV.A is SLOWER than the reference software;
  // IV.B beats everything, GPU single on top for raw throughput.
  EXPECT_LT(a_fpga, ref);
  EXPECT_LT(a_gpu, ref);
  EXPECT_GT(b_fpga, 2000.0);  // the use-case target
  EXPECT_GT(b_gpu, b_fpga);
  EXPECT_GT(b_gpu_sp, b_gpu);
}

TEST(Accelerator, EnergyEfficiencyOrderingMatchesTableII) {
  auto opj = [](Target t) {
    return PricingAccelerator::modelled_options_per_second(t, 1024) /
           PricingAccelerator::modelled_power_watts(t);
  };
  // options/J: GPU-single 340 > FPGA-B 140 > GPU-B 64 > ref 1.85 > A-FPGA
  // 1.7 > A-GPU 0.4.
  EXPECT_GT(opj(Target::kGpuKernelBSingle), opj(Target::kFpgaKernelB));
  EXPECT_GT(opj(Target::kFpgaKernelB), opj(Target::kGpuKernelB));
  EXPECT_GT(opj(Target::kGpuKernelB), opj(Target::kCpuReference));
  EXPECT_GT(opj(Target::kCpuReference), opj(Target::kGpuKernelA));
  EXPECT_GT(opj(Target::kFpgaKernelA), opj(Target::kGpuKernelA));
}

TEST(Accelerator, ComputeUnitCountNeverChangesPricesOrStats) {
  // The parallel compute-unit scheduler must be invisible in the results:
  // same prices (bitwise) and same RuntimeStats totals for any worker
  // count, for both kernel shapes.
  const auto batch = finance::make_random_batch(12, 9);
  for (Target target : {Target::kFpgaKernelB, Target::kGpuKernelA}) {
    PricingAccelerator serial({target, 32, false, 1});
    PricingAccelerator parallel({target, 32, false, 4});
    const RunReport a = serial.run(batch);
    const RunReport b = parallel.run(batch);
    EXPECT_EQ(a.prices, b.prices) << to_string(target);
    ASSERT_TRUE(a.device_stats.has_value()) << to_string(target);
    ASSERT_TRUE(b.device_stats.has_value()) << to_string(target);
    EXPECT_TRUE(*a.device_stats == *b.device_stats) << to_string(target);
  }
}

TEST(Accelerator, TargetNamesAreUniqueAndNonEmpty) {
  std::set<std::string> names;
  for (Target t : all_targets()) {
    const std::string name = to_string(t);
    EXPECT_FALSE(name.empty());
    EXPECT_TRUE(names.insert(name).second) << "duplicate " << name;
  }
}

TEST(Accelerator, RejectsBadConfig) {
  EXPECT_THROW(PricingAccelerator({Target::kCpuReference, 1, true}),
               PreconditionError);
  PricingAccelerator acc({Target::kCpuReference, 16, true});
  EXPECT_THROW((void)acc.run({}), PreconditionError);
}

}  // namespace
}  // namespace binopt::core
