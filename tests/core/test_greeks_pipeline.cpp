#include "core/greeks_pipeline.h"

#include <gtest/gtest.h>

#include "finance/black_scholes.h"
#include "finance/greeks.h"
#include "finance/workload.h"

namespace binopt::core {
namespace {

TEST(GreeksPipeline, MatchesLatticeGreeksOnExactTarget) {
  const std::size_t steps = 128;
  GreeksPipeline pipeline({Target::kGpuKernelB, steps, 1e-3, 1e-3});
  const auto batch = finance::make_curve_batch(9);
  const BatchGreeks g = pipeline.run(batch);
  ASSERT_EQ(g.delta.size(), batch.size());

  for (std::size_t i = 0; i < batch.size(); i += 4) {
    const finance::Greeks lattice =
        finance::binomial_greeks(batch[i], steps);
    EXPECT_NEAR(g.price[i], lattice.price, 1e-9) << "option " << i;
    // Bump deltas carry lattice-grid noise (the bump shifts S0 relative
    // to the leaf grid), so the agreement band is looser than the price.
    EXPECT_NEAR(g.delta[i], lattice.delta, 1e-2) << "option " << i;
    EXPECT_NEAR(g.vega[i], lattice.vega, 0.5) << "option " << i;
  }
}

TEST(GreeksPipeline, CallDeltasDecreaseAcrossTheStrikeLadder) {
  GreeksPipeline pipeline({Target::kGpuKernelB, 64, 1e-3, 1e-3});
  const auto batch = finance::make_curve_batch(15);
  const BatchGreeks g = pipeline.run(batch);
  for (std::size_t i = 1; i < batch.size(); ++i) {
    EXPECT_LT(g.delta[i], g.delta[i - 1] + 1e-6) << "strike index " << i;
  }
  for (std::size_t i = 0; i < batch.size(); ++i) {
    EXPECT_GE(g.delta[i], -1e-9);
    EXPECT_LE(g.delta[i], 1.0 + 1e-9);
    EXPECT_GT(g.vega[i], 0.0);
  }
}

TEST(GreeksPipeline, GammaPositiveNearTheMoney) {
  GreeksPipeline pipeline({Target::kGpuKernelB, 128, 2e-3, 1e-3});
  const auto batch = finance::make_curve_batch(5);  // strikes 60..140
  const BatchGreeks g = pipeline.run(batch);
  EXPECT_GT(g.gamma[2], 0.0);  // the ATM point
}

TEST(GreeksPipeline, AccountsPricingsAndModelledCost) {
  GreeksPipeline pipeline({Target::kFpgaKernelB, 32, 1e-3, 1e-3});
  const auto batch = finance::make_curve_batch(10);
  const BatchGreeks g = pipeline.run(batch);
  EXPECT_EQ(g.pricings, 50u);
  EXPECT_GT(g.modelled_seconds, 0.0);
  EXPECT_GT(g.modelled_energy_joules, 0.0);
}

TEST(GreeksPipeline, ValidatesConfig) {
  EXPECT_THROW(GreeksPipeline({Target::kGpuKernelB, 64, 0.5, 1e-3}),
               PreconditionError);
  EXPECT_THROW(GreeksPipeline({Target::kGpuKernelB, 64, 1e-3, 0.0}),
               PreconditionError);
  GreeksPipeline ok({Target::kGpuKernelB, 64, 1e-3, 1e-3});
  EXPECT_THROW((void)ok.run({}), PreconditionError);
}

}  // namespace
}  // namespace binopt::core
