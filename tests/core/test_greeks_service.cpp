// GreeksService suite (DESIGN.md §2.9): service-path sensitivities and
// scenario sweeps on top of the batched PricingService.
//
// The invariants pinned here:
//
//   1. PARITY: on the CPU-reference target, every service-assembled Greeks
//      is bitwise identical to direct finance::binomial_greeks — the
//      lattice front, the bump set, the assembly arithmetic AND the four
//      leg prices are all shared or bit-reproducible.
//   2. NO ALIASING: a bumped leg never replays an unbumped cache entry,
//      even when the bump is below the cache key's 1e-9 quantization grid
//      (the regression this PR's cache-tag widening fixes).
//   3. CONSERVATION: a scenario sweep's legs all resolve exactly once —
//      ServiceStats balance with the GreeksService's own leg counters,
//      fault plans included (test_core runs under the TSan CI job).
//   4. EPOCH CACHING: re-sweeping an unchanged surface re-prices nothing;
//      bumping the epoch invalidates every leg at once.
#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <cstddef>
#include <string>
#include <vector>

#include "core/service/greeks_service.h"
#include "core/service/pricing_service.h"
#include "finance/greeks.h"
#include "finance/workload.h"
#include "ocl/faults/fault_plan.h"

namespace binopt::core {
namespace {

using namespace std::chrono_literals;
using ocl::faults::parse_fault_plan;

constexpr std::size_t kSteps = 64;

finance::OptionSpec atm_call() {
  finance::OptionSpec spec;
  spec.spot = 100.0;
  spec.strike = 100.0;
  spec.rate = 0.05;
  spec.volatility = 0.20;
  spec.maturity = 1.0;
  spec.type = finance::OptionType::kCall;
  spec.style = finance::ExerciseStyle::kAmerican;
  return spec;
}

ServiceConfig cpu_config(std::size_t cache_capacity = 0) {
  ServiceConfig config;
  config.targets = {Target::kCpuReference};
  config.steps = kSteps;
  config.linger = 0us;
  config.cache_capacity = cache_capacity;
  return config;
}

void expect_greeks_bitwise(const finance::Greeks& got,
                           const finance::Greeks& want) {
  EXPECT_EQ(got.price, want.price);
  EXPECT_EQ(got.delta, want.delta);
  EXPECT_EQ(got.gamma, want.gamma);
  EXPECT_EQ(got.theta, want.theta);
  EXPECT_EQ(got.vega, want.vega);
  EXPECT_EQ(got.rho, want.rho);
}

// ---------------------------------------------------------------------------
// Cache-tag arithmetic.

TEST(GreeksCacheTags, KindsAndEpochsAreDisjoint) {
  EXPECT_EQ(make_cache_tag(QuoteTagKind::kPlain), 0u);  // plain quotes
  EXPECT_NE(make_cache_tag(QuoteTagKind::kVegaUp),
            make_cache_tag(QuoteTagKind::kVegaDown));
  EXPECT_NE(make_cache_tag(QuoteTagKind::kRhoUp),
            make_cache_tag(QuoteTagKind::kRhoDown));
  // Sweep epochs occupy their own namespaces above the 3 kind bits.
  EXPECT_NE(make_cache_tag(QuoteTagKind::kSweepLeg, 0),
            make_cache_tag(QuoteTagKind::kSweepLeg, 1));
  EXPECT_NE(make_cache_tag(QuoteTagKind::kSweepLeg, 7),
            make_cache_tag(QuoteTagKind::kVegaUp, 7));
  // Epoch wraps at 2^29, not before.
  EXPECT_EQ(make_cache_tag(QuoteTagKind::kSweepLeg, 1ull << 29),
            make_cache_tag(QuoteTagKind::kSweepLeg, 0));
  EXPECT_NE(make_cache_tag(QuoteTagKind::kSweepLeg, (1ull << 29) - 1),
            make_cache_tag(QuoteTagKind::kSweepLeg, 0));
}

// ---------------------------------------------------------------------------
// Parity: service-path Greeks == direct binomial_greeks, bitwise, on the
// CPU-reference target.

TEST(GreeksService, BitwiseParityWithDirectGreeks) {
  PricingService service(cpu_config());
  GreeksService greeks(service);
  const finance::OptionSpec spec = atm_call();

  const GreeksQuote quote = greeks.greeks_blocking(spec);
  expect_greeks_bitwise(quote.greeks, finance::binomial_greeks(spec, kSteps));
  EXPECT_FALSE(quote.vega_one_sided);
  EXPECT_FALSE(quote.rho_one_sided);
  // Honest per-leg attribution: all four legs priced on the configured
  // backend, nothing degraded, nothing from a cold cache.
  for (const Quote* leg :
       {&quote.vega_up, &quote.vega_down, &quote.rho_up, &quote.rho_down}) {
    EXPECT_EQ(leg->target, Target::kCpuReference);
    EXPECT_FALSE(leg->from_cache);
    EXPECT_FALSE(leg->degraded);
  }
}

TEST(GreeksService, BatchParityAcrossACurve) {
  PricingService service(cpu_config());
  GreeksService greeks(service);
  const auto book = finance::make_curve_batch(16);

  const std::vector<GreeksQuote> quotes = greeks.greeks_batch_blocking(book);
  ASSERT_EQ(quotes.size(), book.size());
  for (std::size_t i = 0; i < book.size(); ++i) {
    expect_greeks_bitwise(quotes[i].greeks,
                          finance::binomial_greeks(book[i], kSteps));
  }
  const GreeksServiceStats stats = greeks.stats();
  EXPECT_EQ(stats.greeks_requests, book.size());
  EXPECT_EQ(stats.greeks_legs, 4 * book.size());
}

TEST(GreeksService, OneSidedVegaSurvivesTheServicePath) {
  // The bump-underflow regression, end to end: sigma = 5e-5 at r = 0
  // degrades vega to a forward difference; the service must agree with
  // the direct path bit for bit, flags included.
  PricingService service(cpu_config());
  GreeksService greeks(service);
  finance::OptionSpec spec = atm_call();
  spec.rate = 0.0;
  spec.volatility = 5e-5;

  const GreeksQuote quote = greeks.greeks_blocking(spec);
  EXPECT_TRUE(quote.vega_one_sided);
  EXPECT_TRUE(std::isfinite(quote.greeks.vega));
  expect_greeks_bitwise(quote.greeks, finance::binomial_greeks(spec, kSteps));
}

// ---------------------------------------------------------------------------
// No aliasing: a sub-quantization bump must never replay the plain cache
// entry (without the tag widening, vega here collapses to exactly 0).

TEST(GreeksService, SubGridBumpDoesNotAliasThePlainCacheEntry) {
  PricingService service(cpu_config(/*cache_capacity=*/256));
  GreeksService::Config config;
  config.vol_bump = 4e-10;  // below the cache key's 1e-9 grid
  config.rate_bump = 4e-10;
  GreeksService greeks(service, config);
  const finance::OptionSpec spec = atm_call();

  // Seed the plain entry first — the aliasing victim.
  const Quote plain = service.submit(spec).get();

  const GreeksQuote quote = greeks.greeks_blocking(spec);
  // Un-tagged keys would hit `plain` for every leg: up == down == plain
  // price, vega == rho == 0 exactly. The tags keep the legs distinct.
  EXPECT_NE(quote.greeks.vega, 0.0);
  EXPECT_NE(quote.greeks.rho, 0.0);
  EXPECT_NE(quote.vega_up.price, quote.vega_down.price);
  // And the finite differences still converge to the wide-bump truth.
  const finance::Greeks reference = finance::binomial_greeks(spec, kSteps);
  EXPECT_NEAR(quote.greeks.vega, reference.vega,
              0.01 * std::abs(reference.vega));
  EXPECT_NEAR(quote.greeks.rho, reference.rho, 0.01 * std::abs(reference.rho));

  // The plain entry is untouched: a repeat plain quote replays it.
  const Quote replay = service.submit(spec).get();
  EXPECT_EQ(replay.price, plain.price);
  EXPECT_TRUE(replay.from_cache);
}

TEST(GreeksService, CachedReplayIsBitIdentical) {
  PricingService service(cpu_config(/*cache_capacity=*/256));
  GreeksService greeks(service);
  const finance::OptionSpec spec = atm_call();

  const GreeksQuote cold = greeks.greeks_blocking(spec);
  const GreeksQuote warm = greeks.greeks_blocking(spec);
  expect_greeks_bitwise(warm.greeks, cold.greeks);
  // The four legs all replayed from cache the second time.
  EXPECT_TRUE(warm.vega_up.from_cache);
  EXPECT_TRUE(warm.vega_down.from_cache);
  EXPECT_TRUE(warm.rho_up.from_cache);
  EXPECT_TRUE(warm.rho_down.from_cache);
}

// ---------------------------------------------------------------------------
// Scenario sweeps: aggregation, conservation, epoch caching.

SweepRequest small_sweep(std::uint64_t epoch = 0) {
  SweepRequest request;
  request.book = finance::make_curve_batch(4);
  request.grid.spot_factors = {1.0, 0.9, 1.1};
  request.grid.vol_shifts = {0.0, 0.02};
  request.grid.rate_shifts = {0.0, 5e-4};
  request.epoch = epoch;
  return request;
}

TEST(GreeksSweep, AggregatesPnlAcrossTheGrid) {
  PricingService service(cpu_config());
  GreeksService greeks(service);
  const SweepRequest request = small_sweep();
  const std::size_t scenarios = request.grid.scenario_count();

  const SweepReport report = greeks.sweep_blocking(request);
  EXPECT_EQ(report.scenarios, scenarios);
  EXPECT_EQ(report.legs, scenarios * request.book.size());
  ASSERT_EQ(report.scenario_pnl.size(), scenarios);
  EXPECT_EQ(report.pnl.count(), scenarios);
  EXPECT_GT(report.book_value, 0.0);

  // Scenario 0 is the identity shock (factor 1, shifts 0): its legs are
  // the book itself, priced on the same deterministic target, so its P&L
  // is exactly zero — no tolerance.
  EXPECT_EQ(report.scenario_pnl[0], 0.0);
  // A 10% spot drop must lose money on a book of calls; VaR orders hold.
  EXPECT_LT(report.pnl.min(), 0.0);
  EXPECT_GE(report.var99, report.var95);
  EXPECT_GE(report.expected_shortfall95, report.var95);
  EXPECT_GT(report.loss_ticks.count(), 0u);
}

TEST(GreeksSweep, UnchangedEpochRepricesNothing) {
  PricingService service(cpu_config(/*cache_capacity=*/1024));
  GreeksService greeks(service);

  const SweepReport cold = greeks.sweep_blocking(small_sweep(/*epoch=*/7));
  EXPECT_GT(cold.options_priced, 0u);

  // Same surface, same epoch: every leg (base book included) replays.
  const SweepReport warm = greeks.sweep_blocking(small_sweep(/*epoch=*/7));
  EXPECT_EQ(warm.options_priced, 0u);
  EXPECT_EQ(warm.cache_hits,
            warm.legs + small_sweep().book.size());  // shocked + base legs
  EXPECT_EQ(warm.book_value, cold.book_value);
  EXPECT_EQ(warm.scenario_pnl, cold.scenario_pnl);

  // New epoch: the surface moved; every key misses and everything
  // re-prices without any cache walking.
  const SweepReport moved = greeks.sweep_blocking(small_sweep(/*epoch=*/8));
  EXPECT_GT(moved.options_priced, 0u);
}

TEST(GreeksSweep, ConservationUnderChaos) {
  // Transient launch faults on the FPGA kernel-B worker: retries may
  // re-order work but every sweep leg must still resolve exactly once and
  // the identity scenario must still come out at exactly zero P&L.
  ServiceConfig config;
  config.targets = {Target::kFpgaKernelB};
  config.steps = kSteps;
  config.max_batch = 16;
  config.linger = 0us;
  config.retry.max_attempts = 10;
  config.retry.base_backoff = 100us;
  config.retry.max_backoff = 2000us;
  config.worker_fault_plans.push_back(parse_fault_plan("transient@1x2"));
  PricingService service(std::move(config));
  GreeksService greeks(service);

  const SweepRequest request = small_sweep();
  const std::size_t total_legs =
      request.grid.scenario_count() * request.book.size() +
      request.book.size();

  const service::ServiceStats before = service.stats();
  const SweepReport report = greeks.sweep_blocking(request);
  const service::ServiceStats delta = service.stats().minus(before);

  // Conservation: every admitted leg completed, nothing lost, nothing
  // failed or double-counted — and the fault plan actually fired.
  EXPECT_EQ(delta.requests_submitted, total_legs);
  EXPECT_EQ(delta.requests_completed, total_legs);
  EXPECT_EQ(delta.requests_failed, 0u);
  EXPECT_EQ(delta.requests_timed_out, 0u);
  EXPECT_GE(delta.retries, 2u);
  EXPECT_EQ(report.scenario_pnl[0], 0.0);  // parity under faults

  // The GreeksService's own books balance against the service's.
  EXPECT_EQ(greeks.stats().sweep_legs, total_legs);
  EXPECT_EQ(greeks.stats().sweeps, 1u);
}

TEST(GreeksService, LegCountersBalanceServiceAdmissions) {
  PricingService service(cpu_config());
  GreeksService greeks(service);

  const service::ServiceStats before = service.stats();
  (void)greeks.greeks_batch_blocking(finance::make_curve_batch(6));
  (void)greeks.sweep_blocking(small_sweep());
  const service::ServiceStats delta = service.stats().minus(before);

  const GreeksServiceStats mine = greeks.stats();
  EXPECT_EQ(mine.greeks_requests, 6u);
  EXPECT_EQ(mine.greeks_legs, 24u);
  EXPECT_EQ(mine.sweeps, 1u);
  EXPECT_EQ(mine.sweep_scenarios, small_sweep().grid.scenario_count());
  // Every submission this layer generated — and only those — reached the
  // service: greeks legs + sweep legs == admitted requests.
  EXPECT_EQ(mine.greeks_legs + mine.sweep_legs, delta.requests_submitted);
  EXPECT_EQ(delta.requests_completed, delta.requests_submitted);
}

TEST(GreeksSweep, RejectsDegenerateRequests) {
  PricingService service(cpu_config());
  GreeksService greeks(service);
  SweepRequest empty_book;
  empty_book.grid.spot_factors = {1.0};
  EXPECT_THROW((void)greeks.sweep_blocking(empty_book), PreconditionError);

  SweepRequest empty_axis = small_sweep();
  empty_axis.grid.vol_shifts.clear();
  EXPECT_THROW((void)greeks.sweep_blocking(empty_axis), PreconditionError);
}

}  // namespace
}  // namespace binopt::core
