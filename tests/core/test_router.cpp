// FleetRouter suite (DESIGN.md §2.8): the energy/latency-aware dispatch
// layer that replaces naive worker selection with per-batch cost
// prediction off the paper's platform/energy models, continuously
// corrected by a measured-vs-predicted feedback loop.
//
//   1. UNIT: policy parsing/validation, the exact affine decomposition of
//      modelled_batch_seconds, deterministic placement under both
//      policies, queue-depth weighting, routable masking, and EWMA
//      feedback convergence after an injected slowdown.
//   2. SERVICE: routed traffic stays bit-identical to the unrouted
//      service (single-target parity), the router organically starves a
//      stalled backend before its circuit trips, and chaos-grade fault
//      plans keep parity with honest routed/misrouted attribution.
//
// test_core runs under the CI ThreadSanitizer job, so the service-level
// scenarios also race-check the routed-queue spine (per-worker deques,
// probe steal, quarantine drain) against concurrent submitters.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <future>
#include <vector>

#include "core/accelerator.h"
#include "core/service/pricing_service.h"
#include "core/service/router.h"
#include "finance/workload.h"
#include "ocl/faults/fault_plan.h"

namespace binopt::core::service {
namespace {

using namespace std::chrono_literals;

constexpr std::size_t kSteps = 64;

RouterConfig latency_config() {
  RouterConfig config;
  config.policy = RouterPolicy::kLatency;
  return config;
}

// ---------------------------------------------------------------------------
// Policy parsing and config validation.

TEST(RouterPolicy, ParsesAndRoundTrips) {
  EXPECT_EQ(parse_router_policy("off"), RouterPolicy::kOff);
  EXPECT_EQ(parse_router_policy("latency"), RouterPolicy::kLatency);
  EXPECT_EQ(parse_router_policy("energy"), RouterPolicy::kEnergyBudget);
  for (const RouterPolicy policy :
       {RouterPolicy::kOff, RouterPolicy::kLatency,
        RouterPolicy::kEnergyBudget}) {
    EXPECT_EQ(parse_router_policy(to_string(policy)), policy);
  }
  EXPECT_THROW(parse_router_policy("fastest"), PreconditionError);
  EXPECT_THROW(parse_router_policy(""), PreconditionError);
}

TEST(RouterPolicy, EnvKnobSelectsThePolicy) {
  ::setenv("BINOPT_SERVICE_ROUTER", "energy", 1);
  EXPECT_EQ(router_policy_from_env(), RouterPolicy::kEnergyBudget);
  ::setenv("BINOPT_SERVICE_ROUTER", "banana", 1);
  EXPECT_THROW(router_policy_from_env(), PreconditionError);
  ::unsetenv("BINOPT_SERVICE_ROUTER");
  EXPECT_EQ(router_policy_from_env(), RouterPolicy::kOff);
}

TEST(RouterPolicy, ConfigValidationRejectsNonsense) {
  RouterConfig config = latency_config();
  config.feedback_alpha = 0.0;
  EXPECT_THROW(config.validate(), PreconditionError);
  config = latency_config();
  config.feedback_alpha = 1.5;
  EXPECT_THROW(config.validate(), PreconditionError);
  config = latency_config();
  config.watts_budget = -1.0;
  EXPECT_THROW(config.validate(), PreconditionError);
  config = latency_config();
  config.min_correction = 10.0;
  config.max_correction = 1.0;
  EXPECT_THROW(config.validate(), PreconditionError);
  EXPECT_NO_THROW(latency_config().validate());
}

// ---------------------------------------------------------------------------
// Cost model: the router's affine fit is the model, exactly.

TEST(FleetRouter, AffineFitReproducesTheModelExactly) {
  const std::vector<Target> fleet = {Target::kCpuReference,
                                     Target::kGpuKernelB,
                                     Target::kFpgaKernelB};
  const FleetRouter router(fleet, kSteps, latency_config());
  for (std::size_t i = 0; i < fleet.size(); ++i) {
    for (const std::size_t n : {std::size_t{1}, std::size_t{17},
                                std::size_t{257}, std::size_t{1024}}) {
      const double modelled =
          PricingAccelerator::modelled_batch_seconds(fleet[i], kSteps, n);
      // The models are affine in n, so fitting at two points must
      // reproduce them everywhere (tiny FP tolerance for the re-derived
      // slope/intercept arithmetic).
      EXPECT_NEAR(router.predicted_batch_seconds(i, n), modelled,
                  1e-9 * modelled + 1e-15)
          << to_string(fleet[i]) << " n=" << n;
    }
  }
}

TEST(FleetRouter, LatencyPolicyPicksTheModelledFastestBackend) {
  const std::vector<Target> fleet = {Target::kCpuReference,
                                     Target::kGpuKernelB,
                                     Target::kFpgaKernelB};
  const FleetRouter router(fleet, kSteps, latency_config());
  std::size_t fastest = 0;
  double best = PricingAccelerator::modelled_batch_seconds(fleet[0], kSteps, 64);
  for (std::size_t i = 1; i < fleet.size(); ++i) {
    const double t =
        PricingAccelerator::modelled_batch_seconds(fleet[i], kSteps, 64);
    if (t < best) {
      best = t;
      fastest = i;
    }
  }
  // Idle fleet, corrections at 1.0: placement is the argmin of the model.
  EXPECT_EQ(router.pick(64), fastest);
}

TEST(FleetRouter, QueueDepthShiftsPlacementOffTheFastestBackend) {
  const std::vector<Target> fleet = {Target::kCpuReference,
                                     Target::kGpuKernelB,
                                     Target::kFpgaKernelB};
  FleetRouter router(fleet, kSteps, latency_config());
  const std::size_t first = router.pick(64);
  // Pile outstanding work onto the preferred backend until the corrected
  // queue estimate makes somebody else cheaper (join-shortest-queue).
  router.on_enqueued(first, 1u << 22);
  const std::size_t second = router.pick(64);
  EXPECT_NE(second, first);
  // Draining the queue restores the original placement.
  router.on_dequeued(first, 1u << 22);
  EXPECT_EQ(router.pick(64), first);
}

TEST(FleetRouter, UnroutableBackendsAreSkippedUntilNoneRemain) {
  const std::vector<Target> fleet = {Target::kCpuReference,
                                     Target::kCpuReference};
  FleetRouter router(fleet, kSteps, latency_config());
  router.set_routable(0, false);
  EXPECT_EQ(router.pick(1), 1u);
  // Whole fleet down: route anyway (the probe path drains it) instead of
  // wedging admission.
  router.set_routable(1, false);
  const std::size_t pick = router.pick(1);
  EXPECT_LT(pick, fleet.size());
  router.set_routable(0, true);
  EXPECT_EQ(router.pick(1), 0u);
}

TEST(FleetRouter, EnergyPolicyPicksTheMostFrugalBackendUnderBudget) {
  const std::vector<Target> fleet = {Target::kCpuReference,
                                     Target::kGpuKernelB,
                                     Target::kFpgaKernelB};
  RouterConfig config;
  config.policy = RouterPolicy::kEnergyBudget;
  const FleetRouter unbudgeted(fleet, kSteps, config);

  // Modelled J/option per backend, straight from the paper's models.
  std::vector<double> jpo;
  for (const Target t : fleet) {
    jpo.push_back(PricingAccelerator::modelled_power_watts(t) /
                  PricingAccelerator::modelled_options_per_second(t, kSteps));
  }
  std::size_t frugal = 0;
  for (std::size_t i = 1; i < fleet.size(); ++i) {
    if (jpo[i] < jpo[frugal]) frugal = i;
  }
  EXPECT_EQ(unbudgeted.pick(64), frugal);
  // The paper's headline: the FPGA kernel is the energy-efficient target.
  EXPECT_EQ(fleet[frugal], Target::kFpgaKernelB);

  // A watts budget below every backend must degrade gracefully to the
  // frugal pick, not leave batches unroutable.
  config.watts_budget = 1e-3;
  const FleetRouter impossible(fleet, kSteps, config);
  EXPECT_EQ(impossible.pick(64), frugal);
}

TEST(FleetRouter, FeedbackConvergesOnAnInjectedFourXSlowdown) {
  const std::vector<Target> fleet = {Target::kCpuReference};
  FleetRouter router(fleet, kSteps, latency_config());
  ASSERT_DOUBLE_EQ(router.correction(0), 1.0);

  // Report every launch as exactly 4x the model's prediction. The EWMA
  // must converge to a 4x correction (alpha 0.35 closes the gap fast).
  constexpr std::size_t kBatch = 32;
  const auto four_x_ns = static_cast<std::uint64_t>(
      router.predicted_batch_seconds(0, kBatch) * 4.0 * 1e9);
  for (int i = 0; i < 32; ++i) {
    const double ratio = router.record_measurement(0, kBatch, four_x_ns);
    EXPECT_NEAR(ratio, 4.0, 0.05);
  }
  EXPECT_NEAR(router.correction(0), 4.0, 0.05);
  // And the corrected estimate now reflects the slowdown.
  EXPECT_NEAR(router.corrected_queue_seconds(0, kBatch),
              router.predicted_batch_seconds(0, kBatch) * 4.0,
              router.predicted_batch_seconds(0, kBatch) * 0.2);
}

TEST(FleetRouter, FeedbackClampsGarbageMeasurements) {
  RouterConfig config = latency_config();
  config.max_correction = 100.0;
  config.min_correction = 0.1;
  FleetRouter router({Target::kCpuReference}, kSteps, config);
  // An absurd measurement saturates at the clamp instead of exploding.
  for (int i = 0; i < 64; ++i) {
    router.record_measurement(0, 1, ~std::uint64_t{0} / 2);
  }
  EXPECT_LE(router.correction(0), 100.0);
  // A zero measurement saturates at the floor instead of hitting 0 (a
  // zero correction would make every queue look free).
  for (int i = 0; i < 64; ++i) router.record_measurement(0, 1, 0);
  EXPECT_GE(router.correction(0), 0.1);
}

// ---------------------------------------------------------------------------
// Service integration.

std::vector<double> direct_prices(const std::vector<finance::OptionSpec>& batch,
                                  Target target) {
  PricingAccelerator direct({target, kSteps, /*compute_rmse=*/false});
  return direct.run(batch).prices;
}

TEST(RoutedService, SingleTargetRoutingIsBitIdenticalToUnrouted) {
  const auto batch = finance::make_curve_batch(96);
  ServiceConfig config;
  config.targets.assign(2, Target::kCpuReference);
  config.steps = kSteps;
  config.max_batch = 16;
  config.linger = 0us;
  config.cache_capacity = 0;

  PricingService plain(config);
  const std::vector<double> unrouted = plain.submit_batch(batch).get();

  config.router.policy = RouterPolicy::kLatency;
  PricingService routed(config);
  const std::vector<double> via_router = routed.submit_batch(batch).get();
  EXPECT_EQ(via_router, unrouted);  // bitwise: routing moves work, not math

  const auto stats = routed.stats();
  EXPECT_EQ(stats.requests_routed, batch.size());
  EXPECT_EQ(stats.requests_completed, batch.size());
  EXPECT_GT(stats.predicted_vs_measured.count(), 0u);
  // Quotes report both the placement and the pricing backend.
  const Quote quote = routed.submit(batch.front()).get();
  EXPECT_EQ(quote.target, Target::kCpuReference);
  EXPECT_EQ(quote.routed_target, Target::kCpuReference);
}

TEST(RoutedService, FeedbackStarvesAStalledBackendBeforeItsCircuitTrips) {
  // Two identical backends; worker 1 stalls 5ms on EVERY launch (the
  // stall succeeds — health never trips, the circuit stays closed). The
  // router's measured-vs-predicted feedback is the only mechanism that
  // can notice, and it must shift the traffic share toward worker 0.
  ServiceConfig config;
  config.targets.assign(2, Target::kFpgaKernelB);
  config.steps = kSteps;
  config.max_batch = 8;
  config.linger = 0us;
  config.cache_capacity = 0;
  config.router.policy = RouterPolicy::kLatency;
  config.worker_fault_plans.resize(2);
  config.worker_fault_plans[1] =
      ocl::faults::parse_fault_plan("stall@1x100000,ms=5");

  const auto batch = finance::make_curve_batch(160);
  const std::vector<double> expected =
      direct_prices(batch, Target::kFpgaKernelB);

  // Waves of 16 with a barrier between them: placements in wave k see the
  // measured/predicted corrections learned from waves < k. (A single
  // up-front blast would be placed entirely on pre-feedback estimates.)
  PricingService service(config);
  constexpr std::size_t kWave = 16;
  for (std::size_t base = 0; base < batch.size(); base += kWave) {
    std::vector<std::future<Quote>> futures;
    futures.reserve(kWave);
    for (std::size_t i = base; i < base + kWave; ++i) {
      futures.push_back(service.submit(batch[i]));
    }
    for (std::size_t i = 0; i < futures.size(); ++i) {
      EXPECT_EQ(futures[i].get().price, expected[base + i]);  // parity
    }
  }

  const auto stats = service.stats();
  ASSERT_EQ(stats.served_by_backend.size(), 2u);
  // The healthy backend ends up with the strict majority of the traffic —
  // organic starvation of the slow worker, no quarantine involved.
  EXPECT_GT(stats.served_by_backend[0], stats.served_by_backend[1]);
  EXPECT_EQ(stats.quarantines_entered, 0u);
  EXPECT_GT(stats.predicted_vs_measured.count(), 0u);
  EXPECT_EQ(stats.requests_completed, batch.size());
}

TEST(RoutedService, ChaosFaultsKeepParityAndHonestAttribution) {
  // Chaos with the router on: worker 0 loses its device on launch 1 and
  // worker 1 hiccups transiently — every price must still be bitwise
  // identical, and requests collected by a worker other than the routed
  // one must be counted as misrouted (failover/probe traffic).
  ServiceConfig config;
  config.targets.assign(2, Target::kFpgaKernelB);
  config.steps = kSteps;
  config.max_batch = 16;
  config.linger = 0us;
  config.cache_capacity = 0;
  config.retry.max_attempts = 10;
  config.retry.base_backoff = 100us;
  config.retry.max_backoff = 2000us;
  config.health.probe_backoff = 1000us;
  config.health.max_probe_backoff = 8000us;
  config.health.probe_successes = 2;
  config.router.policy = RouterPolicy::kLatency;
  config.worker_fault_plans = {
      ocl::faults::parse_fault_plan("device-lost@1"),
      ocl::faults::parse_fault_plan("transient@2x2")};

  const auto batch = finance::make_curve_batch(64);
  const std::vector<double> expected =
      direct_prices(batch, Target::kFpgaKernelB);

  PricingService service(config);
  EXPECT_EQ(service.submit_batch(batch).get(), expected);

  const auto stats = service.stats();
  EXPECT_EQ(stats.requests_completed, batch.size());
  EXPECT_EQ(stats.requests_failed, 0u);
  EXPECT_EQ(stats.requests_routed, batch.size());
  if (stats.failovers > 0) {
    // Failed-over work was collected off its routed backend.
    EXPECT_GT(stats.requests_misrouted, 0u);
  }
}

TEST(RoutedService, EnergyPolicyRoutesToTheFrugalBackendWithParity) {
  // Mixed fleet under the energy policy: all steady traffic must land on
  // the modelled-frugal backend (the FPGA kernel) and stay bit-identical
  // to that backend's direct run.
  ServiceConfig config;
  config.targets = {Target::kCpuReference, Target::kFpgaKernelB};
  config.steps = kSteps;
  config.max_batch = 16;
  config.linger = 0us;
  config.cache_capacity = 0;
  config.router.policy = RouterPolicy::kEnergyBudget;

  const auto batch = finance::make_curve_batch(32);
  const std::vector<double> expected =
      direct_prices(batch, Target::kFpgaKernelB);

  PricingService service(config);
  std::vector<std::future<Quote>> futures;
  futures.reserve(batch.size());
  for (const auto& spec : batch) futures.push_back(service.submit(spec));
  for (std::size_t i = 0; i < futures.size(); ++i) {
    const Quote quote = futures[i].get();
    EXPECT_EQ(quote.price, expected[i]);
    EXPECT_EQ(quote.target, Target::kFpgaKernelB);
    EXPECT_EQ(quote.routed_target, Target::kFpgaKernelB);
  }
  const auto stats = service.stats();
  ASSERT_EQ(stats.served_by_backend.size(), 2u);
  EXPECT_EQ(stats.served_by_backend[0], 0u);
  EXPECT_EQ(stats.served_by_backend[1], batch.size());
}

// ---------------------------------------------------------------------------
// Attribution satellites: cache hits and degraded quotes report the
// backend that actually priced them, never merely the routed one.

TEST(RoutedService, CacheHitReportsTheBackendThatOriginallyPricedIt) {
  ServiceConfig config;
  config.targets = {Target::kFpgaKernelB};
  config.steps = kSteps;
  config.max_batch = 8;
  config.linger = 0us;
  config.cache_capacity = 128;
  config.router.policy = RouterPolicy::kLatency;

  PricingService service(config);
  const finance::OptionSpec spec{};
  const Quote cold = service.submit(spec).get();
  EXPECT_FALSE(cold.from_cache);
  EXPECT_EQ(cold.target, Target::kFpgaKernelB);
  EXPECT_EQ(cold.routed_target, Target::kFpgaKernelB);

  const Quote warm = service.submit(spec).get();
  EXPECT_TRUE(warm.from_cache);  // stamped, not silent
  EXPECT_EQ(warm.price, cold.price);
  // Attribution: the cache hit names the backend that priced the entry.
  EXPECT_EQ(warm.target, Target::kFpgaKernelB);
  EXPECT_EQ(service.stats().cache_hits, 1u);
}

TEST(RoutedService, DegradedQuoteSeparatesRoutedAndPricingBackends) {
  // Routed to the FPGA backend, which permanently dies: with
  // degrade_to_cpu the CPU reference answers. The quote must name BOTH
  // truths — routed_target = where the router placed it, target = who
  // actually priced it.
  ServiceConfig config;
  config.targets = {Target::kFpgaKernelB};
  config.steps = kSteps;
  config.max_batch = 8;
  config.linger = 0us;
  config.cache_capacity = 0;
  config.retry.max_attempts = 2;
  config.retry.base_backoff = 100us;
  config.retry.max_backoff = 1000us;
  config.degrade_to_cpu = true;
  config.router.policy = RouterPolicy::kLatency;
  config.worker_fault_plans = {
      ocl::faults::parse_fault_plan("transient@~100")};

  PricingService service(config);
  const finance::OptionSpec spec{};
  const double cpu_price =
      direct_prices({spec}, Target::kCpuReference).front();

  const Quote quote = service.submit(spec).get();
  EXPECT_TRUE(quote.degraded);
  EXPECT_EQ(quote.price, cpu_price);
  EXPECT_EQ(quote.target, Target::kCpuReference);      // who priced it
  EXPECT_EQ(quote.routed_target, Target::kFpgaKernelB);  // where it went
  EXPECT_EQ(service.stats().degraded_completions, 1u);
}

}  // namespace
}  // namespace binopt::core::service
