// Sharded QuoteCache behaviour: shard-count policy (small caches stay one
// exact global LRU), hit/miss/evict parity with a reference LRU, routing
// stability, and concurrent readers racing eviction. test_core runs under
// the ThreadSanitizer CI job, so the concurrency tests double as race
// checks of the per-shard locking.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <list>
#include <optional>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/service/quote_cache.h"
#include "finance/workload.h"

namespace binopt::core::service {
namespace {

finance::OptionSpec spec_with_strike(double strike) {
  finance::OptionSpec spec;
  spec.spot = 100.0;
  spec.strike = strike;
  spec.rate = 0.03;
  spec.dividend = 0.0;
  spec.volatility = 0.25;
  spec.maturity = 1.0;
  spec.type = finance::OptionType::kPut;
  spec.style = finance::ExerciseStyle::kAmerican;
  return spec;
}

CacheKey key_for(double strike) {
  return CacheKey::from(spec_with_strike(strike), 64, Target::kFpgaKernelB);
}

/// The old single-mutex LRU, reimplemented minimally as the behavioural
/// oracle for the single-shard configuration.
class ReferenceLru {
public:
  explicit ReferenceLru(std::size_t capacity) : capacity_(capacity) {}

  std::optional<double> lookup(const CacheKey& key) {
    const auto it = map_.find(key);
    if (it == map_.end()) return std::nullopt;
    order_.splice(order_.begin(), order_, it->second);
    return it->second->second;
  }

  std::size_t insert(const CacheKey& key, double price) {
    if (const auto it = map_.find(key); it != map_.end()) {
      it->second->second = price;
      order_.splice(order_.begin(), order_, it->second);
      return 0;
    }
    std::size_t evicted = 0;
    if (order_.size() >= capacity_) {
      map_.erase(order_.back().first);
      order_.pop_back();
      evicted = 1;
    }
    order_.emplace_front(key, price);
    map_.emplace(key, order_.begin());
    return evicted;
  }

private:
  std::size_t capacity_;
  std::list<std::pair<CacheKey, double>> order_;
  std::unordered_map<CacheKey, decltype(order_)::iterator, CacheKeyHash> map_;
};

TEST(QuoteCacheSharding, AutoPolicyKeepsSmallCachesSingleShard) {
  // Below one shard's worth of entries the cache must stay a single
  // exact global LRU — existing service tests pin exact eviction order
  // at capacities 2 and 64.
  EXPECT_EQ(QuoteCache(2).shard_count(), 1u);
  EXPECT_EQ(QuoteCache(64).shard_count(), 1u);
  EXPECT_EQ(QuoteCache(128).shard_count(), 2u);
  EXPECT_EQ(QuoteCache(4096).shard_count(), 64u);
  // Capped at kMaxShards however large the cache grows.
  EXPECT_EQ(QuoteCache(1 << 20).shard_count(), QuoteCache::kMaxShards);
  // Explicit counts are honoured (clamped to [1, min(64, capacity)]).
  EXPECT_EQ(QuoteCache(1024, 8).shard_count(), 8u);
  EXPECT_EQ(QuoteCache(4, 100).shard_count(), 4u);
  // Disabled cache: no entries, one inert shard.
  const QuoteCache disabled(0);
  EXPECT_FALSE(disabled.enabled());
  EXPECT_EQ(disabled.shard_count(), 1u);
}

TEST(QuoteCacheSharding, CapacityDividesExactlyAcrossShards) {
  const QuoteCache cache(100, 8);
  EXPECT_EQ(cache.capacity(), 100u);
  EXPECT_EQ(cache.shard_count(), 8u);
  // Fill far past capacity; total size must settle at exactly capacity.
  QuoteCache full(100, 8);
  for (int i = 0; i < 1000; ++i) {
    full.insert(key_for(10.0 + i), static_cast<double>(i));
  }
  EXPECT_EQ(full.size(), 100u);
}

TEST(QuoteCacheSharding, SingleShardMatchesReferenceLruExactly) {
  // Hit/miss/evict parity against the pre-sharding implementation: with
  // one shard, every lookup result and every eviction count must match
  // the oracle step for step across a mixed workload.
  QuoteCache cache(8, 1);
  ReferenceLru oracle(8);
  ASSERT_EQ(cache.shard_count(), 1u);

  std::uint64_t rng = 0x9E3779B97F4A7C15ull;
  const auto next = [&rng] {
    rng ^= rng << 13;
    rng ^= rng >> 7;
    rng ^= rng << 17;
    return rng;
  };
  std::size_t hits = 0;
  std::size_t evictions = 0;
  for (int i = 0; i < 4000; ++i) {
    const double strike = 50.0 + static_cast<double>(next() % 24);
    const CacheKey key = key_for(strike);
    if (next() % 2 == 0) {
      const auto got = cache.lookup(key);
      const auto want = oracle.lookup(key);
      ASSERT_EQ(got.has_value(), want.has_value()) << "step " << i;
      if (got.has_value()) {
        ASSERT_EQ(*got, *want) << "step " << i;
        ++hits;
      }
    } else {
      const double price = static_cast<double>(next() % 1000);
      const std::size_t got = cache.insert(key, price);
      const std::size_t want = oracle.insert(key, price);
      ASSERT_EQ(got, want) << "step " << i;
      evictions += got;
    }
  }
  // The workload must actually have exercised both paths.
  EXPECT_GT(hits, 0u);
  EXPECT_GT(evictions, 0u);
}

TEST(QuoteCacheSharding, RoutingIsStableAndInRange) {
  const QuoteCache cache(4096);
  ASSERT_GT(cache.shard_count(), 1u);
  for (int i = 0; i < 100; ++i) {
    const CacheKey key = key_for(10.0 + i);
    const std::size_t shard = cache.shard_for(key);
    EXPECT_LT(shard, cache.shard_count());
    EXPECT_EQ(shard, cache.shard_for(key));  // deterministic
  }
}

TEST(QuoteCacheSharding, InsertedEntriesAreFoundWhereverTheyShard) {
  QuoteCache cache(4096);
  for (int i = 0; i < 500; ++i) {
    cache.insert(key_for(10.0 + i), 1000.0 + i);
  }
  for (int i = 0; i < 500; ++i) {
    const auto hit = cache.lookup(key_for(10.0 + i));
    ASSERT_TRUE(hit.has_value()) << "strike " << 10.0 + i;
    EXPECT_EQ(*hit, 1000.0 + i);
  }
  EXPECT_EQ(cache.size(), 500u);
}

TEST(QuoteCacheSharding, ConcurrentReadersSurviveEviction) {
  // Readers hammer a fixed key range while a writer churns a much larger
  // range through a small sharded cache, forcing constant eviction. Any
  // hit must return the exact value written for that key; under TSan
  // this also race-checks lookup's recency splice against eviction.
  QuoteCache cache(128, 4);
  ASSERT_EQ(cache.shard_count(), 4u);
  std::atomic<bool> stop{false};
  std::atomic<std::size_t> hits{0};

  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        for (int i = 0; i < 64; ++i) {
          const auto hit = cache.lookup(key_for(10.0 + i));
          if (hit.has_value()) {
            // Value integrity: a concurrent eviction may miss us, but it
            // must never hand back another key's price.
            ASSERT_EQ(*hit, 1000.0 + i);
            hits.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    });
  }
  for (int round = 0; round < 200; ++round) {
    for (int i = 0; i < 64; ++i) {
      cache.insert(key_for(10.0 + i), 1000.0 + i);
    }
    // Churn: unrelated keys that force evictions in every shard.
    for (int i = 0; i < 64; ++i) {
      const int k = round * 64 + i;
      cache.insert(key_for(5000.0 + k), -1.0 - k);
    }
  }
  // On a loaded machine the readers may never win a time slice while the
  // churn loop is evicting, leaving them zero observed hits. Re-publish
  // the hot keys (bounded) until at least one lands, so the value-
  // integrity assertion above is actually exercised before we stop.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (hits.load(std::memory_order_relaxed) == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    for (int i = 0; i < 64; ++i) {
      cache.insert(key_for(10.0 + i), 1000.0 + i);
    }
    std::this_thread::yield();
  }
  stop.store(true, std::memory_order_relaxed);
  for (auto& reader : readers) reader.join();
  EXPECT_GT(hits.load(), 0u);
  EXPECT_LE(cache.size(), cache.capacity());
}

// ---------------------------------------------------------------------------
// Tag widening (the Greeks aliasing fix, DESIGN.md §2.9): the 1e-9
// quantization grid cannot separate a sub-grid-bumped spec from its
// unbumped neighbour, so the tag must.

TEST(QuoteCacheTags, SubGridBumpQuantizesOntoTheSameUntaggedKey) {
  // Demonstrates the aliasing hazard the tag exists for: a 4e-10 vol bump
  // is below the grid, so WITHOUT tags the bumped and unbumped specs
  // produce equal keys and a vega leg would replay the unbumped price.
  const finance::OptionSpec base = spec_with_strike(100.0);
  finance::OptionSpec bumped = base;
  bumped.volatility += 4e-10;
  EXPECT_EQ(CacheKey::from(base, 64, Target::kFpgaKernelB),
            CacheKey::from(bumped, 64, Target::kFpgaKernelB));
}

TEST(QuoteCacheTags, TagsSeparateOtherwiseIdenticalKeys) {
  const finance::OptionSpec spec = spec_with_strike(100.0);
  const CacheKey plain = CacheKey::from(spec, 64, Target::kFpgaKernelB);
  const CacheKey tagged =
      CacheKey::from(spec, 64, Target::kFpgaKernelB, /*tag=*/1);
  EXPECT_NE(plain, tagged);
  // The hash must see the tag too, or every tagged entry would pile onto
  // the plain entry's bucket (correct but pathological).
  EXPECT_NE(CacheKeyHash{}(plain), CacheKeyHash{}(tagged));
}

TEST(QuoteCacheTags, BumpedAndUnbumpedEntriesNeverShareAnEntry) {
  // The satellite's acceptance test: insert the SAME quantized spec under
  // the plain tag and under a bump tag with different prices; both must
  // be retrievable and neither may overwrite the other.
  QuoteCache cache(64);
  const finance::OptionSpec spec = spec_with_strike(100.0);
  const CacheKey plain = CacheKey::from(spec, 64, Target::kFpgaKernelB);
  const CacheKey bump_leg =
      CacheKey::from(spec, 64, Target::kFpgaKernelB, /*tag=*/3);

  cache.insert(plain, 10.0);
  cache.insert(bump_leg, 10.25);

  const auto plain_hit = cache.lookup(plain);
  const auto bump_hit = cache.lookup(bump_leg);
  ASSERT_TRUE(plain_hit.has_value());
  ASSERT_TRUE(bump_hit.has_value());
  EXPECT_EQ(*plain_hit, 10.0);
  EXPECT_EQ(*bump_hit, 10.25);
  EXPECT_EQ(cache.size(), 2u);
}

TEST(QuoteCacheTags, DefaultTagIsZeroAndBackwardCompatible) {
  // Existing call sites built keys without a tag; they must keep hitting
  // entries inserted via the explicit tag-0 form and vice versa.
  QuoteCache cache(8);
  const finance::OptionSpec spec = spec_with_strike(42.0);
  cache.insert(CacheKey::from(spec, 64, Target::kFpgaKernelB), 7.0);
  const auto hit =
      cache.lookup(CacheKey::from(spec, 64, Target::kFpgaKernelB, /*tag=*/0));
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, 7.0);
}

}  // namespace
}  // namespace binopt::core::service
