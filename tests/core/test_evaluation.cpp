#include "core/evaluation.h"

#include <gtest/gtest.h>

#include "devices/calibration.h"
#include "finance/workload.h"
#include "kernels/ir_builders.h"

namespace binopt::core {
namespace {

TEST(Evaluation, FastModeSkipsFunctionalRuns) {
  Table2Config config;
  config.functional_rmse = false;
  const auto rows = build_table2(config);
  ASSERT_EQ(rows.size(), 7u);
  for (const auto& row : rows) {
    EXPECT_FALSE(row.rmse_measured);
    EXPECT_DOUBLE_EQ(row.rmse, 0.0);
    EXPECT_GT(row.options_per_s, 0.0);
    EXPECT_GT(row.options_per_joule, 0.0);
    EXPECT_GT(row.nodes_per_s, row.options_per_s);  // N(N+1)/2 > 1
  }
}

TEST(Evaluation, RowsAreDeterministic) {
  Table2Config config;
  config.functional_rmse = false;
  const auto a = build_table2(config);
  const auto b = build_table2(config);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].options_per_s, b[i].options_per_s);
    EXPECT_DOUBLE_EQ(a[i].options_per_joule, b[i].options_per_joule);
  }
}

TEST(Evaluation, NodesPerSecondConsistentWithShape) {
  Table2Config config;
  config.steps = 512;
  config.functional_rmse = false;
  const auto rows = build_table2(config);
  const double nodes_per_option = 512.0 * 513.0 / 2.0;
  for (const auto& row : rows) {
    EXPECT_NEAR(row.nodes_per_s / row.options_per_s, nodes_per_option, 1.0);
  }
}

TEST(Evaluation, RenderWithoutPaperRowsOmitsThem) {
  Table2Config config;
  config.functional_rmse = false;
  const std::string text = render_table2(build_table2(config), false);
  EXPECT_EQ(text.find("[paper]"), std::string::npos);
  EXPECT_NE(text.find("Kernel IV.A"), std::string::npos);
}

TEST(Evaluation, KernelIrBuildersStayConsistentWithTheKernels) {
  // Structural facts the fitter relies on; if the kernel bodies change,
  // these pin the IRs to follow.
  const auto ir_a = kernels::kernel_a_ir(1024);
  EXPECT_TRUE(ir_a.coalescing_fifos);
  EXPECT_TRUE(ir_a.local_buffers.empty());
  EXPECT_DOUBLE_EQ(ir_a.loop_trip_count, 1.0);
  for (const auto& op : ir_a.ops) {
    EXPECT_EQ(op.section, fpga::Section::kStraightLine);
    EXPECT_NE(op.kind, fpga::OpKind::kFPow);  // host leaves: no pow!
  }

  const auto ir_b = kernels::kernel_b_ir(1024);
  EXPECT_FALSE(ir_b.coalescing_fifos);
  ASSERT_EQ(ir_b.local_buffers.size(), 1u);
  EXPECT_EQ(ir_b.local_buffers[0].words, 1025u);  // the V row
  EXPECT_DOUBLE_EQ(ir_b.loop_trip_count, 1024.0);
  bool has_pow = false;
  for (const auto& op : ir_b.ops) {
    if (op.kind == fpga::OpKind::kFPow) {
      has_pow = true;
      EXPECT_EQ(op.section, fpga::Section::kStraightLine);  // leaf init only
    }
  }
  EXPECT_TRUE(has_pow);  // the Power operator IS in kernel B
}

TEST(Evaluation, HostLeavesTargetIsSlightlySlowerThanBase) {
  const double base = PricingAccelerator::modelled_options_per_second(
      Target::kFpgaKernelB, 1024);
  const double fallback = PricingAccelerator::modelled_options_per_second(
      Target::kFpgaKernelBHostLeaves, 1024);
  EXPECT_LT(fallback, base);          // "to the detriment of speed"...
  EXPECT_GT(fallback, base * 0.95);   // ...but only a few percent here
}

TEST(Evaluation, HostLeavesTargetIsExactThroughTheFullStack) {
  PricingAccelerator acc({Target::kFpgaKernelBHostLeaves, 64, true});
  const auto report = acc.run(finance::make_smoke_batch());
  EXPECT_LT(report.rmse_vs_reference, 1e-11);
}

}  // namespace
}  // namespace binopt::core
