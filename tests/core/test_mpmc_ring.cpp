// MpmcRing / EventGate / SlabArena behaviour: sequence-protocol FIFO
// order, wraparound over many laps, full/empty boundaries, and
// multi-producer multi-consumer delivery with neither losses nor
// duplicates. test_core is part of the ThreadSanitizer CI job, so the
// stress tests double as race checks of the lock-free hot-path
// primitives.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <set>
#include <thread>
#include <vector>

#include "core/service/mpmc_ring.h"
#include "core/service/slab_arena.h"

namespace binopt::core::service {
namespace {

using namespace std::chrono_literals;

TEST(NextPow2, RoundsUpToPowersOfTwo) {
  EXPECT_EQ(next_pow2(1), 1u);
  EXPECT_EQ(next_pow2(2), 2u);
  EXPECT_EQ(next_pow2(3), 4u);
  EXPECT_EQ(next_pow2(4), 4u);
  EXPECT_EQ(next_pow2(5), 8u);
  EXPECT_EQ(next_pow2(8192), 8192u);
  EXPECT_EQ(next_pow2(8193), 16384u);
}

TEST(MpmcRing, CapacityRoundsUpToPowerOfTwo) {
  const MpmcRing<int> ring(5);
  EXPECT_EQ(ring.capacity(), 8u);
  const MpmcRing<int> exact(16);
  EXPECT_EQ(exact.capacity(), 16u);
}

TEST(MpmcRing, SingleThreadFifoOrder) {
  MpmcRing<int> ring(128);
  for (int i = 0; i < 100; ++i) ASSERT_TRUE(ring.try_push(i));
  for (int i = 0; i < 100; ++i) {
    int value = -1;
    ASSERT_TRUE(ring.try_pop(value));
    EXPECT_EQ(value, i);
  }
  int value = -1;
  EXPECT_FALSE(ring.try_pop(value));
}

TEST(MpmcRing, RejectsPushWhenFullAndPopWhenEmpty) {
  MpmcRing<int> ring(4);
  int value = -1;
  EXPECT_FALSE(ring.try_pop(value));  // empty from the start
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(ring.try_push(i));
  EXPECT_FALSE(ring.try_push(99));  // full
  EXPECT_EQ(ring.size_approx(), 4u);
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(ring.try_pop(value));
    EXPECT_EQ(value, i);
  }
  EXPECT_FALSE(ring.try_pop(value));  // empty again
  EXPECT_TRUE(ring.empty_approx());
}

TEST(MpmcRing, WraparoundKeepsFifoOverManyLaps) {
  // A small ring cycled far past its capacity exercises the sequence
  // stamps' lap arithmetic (seq = pos + capacity on recycle).
  MpmcRing<std::uint64_t> ring(4);
  std::uint64_t next = 0;
  for (int lap = 0; lap < 10000; ++lap) {
    for (int k = 0; k < 3; ++k) ASSERT_TRUE(ring.try_push(next + k));
    for (int k = 0; k < 3; ++k) {
      std::uint64_t value = ~std::uint64_t{0};
      ASSERT_TRUE(ring.try_pop(value));
      ASSERT_EQ(value, next + k);
    }
    next += 3;
  }
}

TEST(MpmcRing, StressDeliversEveryValueExactlyOnce) {
  // 4 producers blast disjoint id ranges through a deliberately small
  // ring while 4 consumers drain it; afterwards the union of everything
  // received must be exactly the set sent — no loss, no duplication.
  // Under TSan this also race-checks the push/pop element handoff.
  constexpr int kProducers = 4;
  constexpr int kConsumers = 4;
  constexpr std::uint64_t kPerProducer = 2000;
  MpmcRing<std::uint64_t> ring(64);
  std::atomic<std::uint64_t> consumed{0};
  std::vector<std::vector<std::uint64_t>> received(kConsumers);

  std::vector<std::thread> threads;
  for (int c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&, c] {
      std::uint64_t value = 0;
      while (consumed.load(std::memory_order_relaxed) <
             kProducers * kPerProducer) {
        if (ring.try_pop(value)) {
          received[c].push_back(value);
          consumed.fetch_add(1, std::memory_order_relaxed);
        } else {
          std::this_thread::yield();
        }
      }
    });
  }
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&, p] {
      for (std::uint64_t i = 0; i < kPerProducer; ++i) {
        const std::uint64_t id = p * kPerProducer + i;
        while (!ring.try_push(id)) std::this_thread::yield();
      }
    });
  }
  for (auto& thread : threads) thread.join();

  std::set<std::uint64_t> all;
  std::size_t total = 0;
  for (const auto& chunk : received) {
    total += chunk.size();
    all.insert(chunk.begin(), chunk.end());
  }
  EXPECT_EQ(total, kProducers * kPerProducer);  // no duplicates
  EXPECT_EQ(all.size(), kProducers * kPerProducer);  // no losses
  EXPECT_EQ(*all.begin(), 0u);
  EXPECT_EQ(*all.rbegin(), kProducers * kPerProducer - 1);
}

TEST(MpmcRing, PerProducerOrderIsPreservedUnderContention) {
  // FIFO per producer: ids from one producer must be consumed in the
  // order that producer pushed them (the global order may interleave).
  constexpr std::uint64_t kCount = 5000;
  MpmcRing<std::uint64_t> ring(32);
  std::vector<std::uint64_t> out;
  out.reserve(kCount);
  std::thread consumer([&] {
    std::uint64_t value = 0;
    while (out.size() < kCount) {
      if (ring.try_pop(value)) out.push_back(value);
      else std::this_thread::yield();
    }
  });
  for (std::uint64_t i = 0; i < kCount; ++i) {
    while (!ring.try_push(i)) std::this_thread::yield();
  }
  consumer.join();
  EXPECT_TRUE(std::is_sorted(out.begin(), out.end()));
  EXPECT_EQ(out.size(), kCount);
}

TEST(EventGate, NotifyWakesParkedWaiter) {
  EventGate gate;
  std::atomic<bool> flag{false};
  std::atomic<bool> woke{false};
  std::thread waiter([&] {
    const bool satisfied = gate.wait_until(
        std::chrono::steady_clock::now() + 5s,
        [&] { return flag.load(std::memory_order_relaxed); });
    woke.store(satisfied, std::memory_order_relaxed);
  });
  std::this_thread::sleep_for(10ms);
  flag.store(true, std::memory_order_relaxed);
  gate.notify();
  waiter.join();
  EXPECT_TRUE(woke.load());
}

TEST(EventGate, WaitTimesOutWhenPredicateStaysFalse) {
  EventGate gate;
  const auto start = std::chrono::steady_clock::now();
  const bool satisfied =
      gate.wait_until(start + 20ms, [] { return false; });
  EXPECT_FALSE(satisfied);
  EXPECT_GE(std::chrono::steady_clock::now() - start, 20ms);
}

TEST(SlabArena, AcquireYieldsDistinctStableSlots) {
  SlabArena<std::uint64_t> arena(8, /*slab_size=*/4);
  std::set<std::uint64_t*> slots;
  std::vector<std::uint64_t*> leased;
  for (int i = 0; i < 8; ++i) {
    std::uint64_t* slot = arena.acquire();
    ASSERT_NE(slot, nullptr);
    slots.insert(slot);
    leased.push_back(slot);
  }
  EXPECT_EQ(slots.size(), 8u);  // all distinct
  EXPECT_EQ(arena.allocated(), 8u);
  for (std::uint64_t* slot : leased) arena.release(slot);
  // Recycled leases come from the same slab storage — no new growth.
  for (int i = 0; i < 8; ++i) {
    std::uint64_t* slot = arena.acquire();
    EXPECT_TRUE(slots.count(slot)) << "acquire() returned a foreign slot";
    leased[i] = slot;
  }
  EXPECT_EQ(arena.allocated(), 8u);
  for (std::uint64_t* slot : leased) arena.release(slot);
}

TEST(SlabArena, ConcurrentLeaseCycleStaysBounded) {
  // 4 threads cycling acquire -> write -> release through a small arena;
  // TSan checks the freelist handoff, and the slot bound must hold.
  SlabArena<std::uint64_t> arena(16, /*slab_size=*/4);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 2000; ++i) {
        std::uint64_t* slot = arena.acquire();
        *slot = static_cast<std::uint64_t>(t) * 1000000 + i;
        arena.release(slot);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_LE(arena.allocated(), arena.max_slots());
}

}  // namespace
}  // namespace binopt::core::service
