#include "perf/timeline.h"

#include <gtest/gtest.h>

namespace binopt::perf {
namespace {

TEST(Timeline, IndependentTasksOnDistinctResourcesOverlap) {
  Timeline t;
  t.add("a", Resource::kDmaWrite, 2.0);
  t.add("b", Resource::kKernel, 3.0);
  EXPECT_DOUBLE_EQ(t.makespan(), 3.0);  // parallel, not 5
}

TEST(Timeline, SameResourceSerializes) {
  Timeline t;
  t.add("a", Resource::kDmaWrite, 2.0);
  t.add("b", Resource::kDmaWrite, 3.0);
  EXPECT_DOUBLE_EQ(t.makespan(), 5.0);
}

TEST(Timeline, DependenciesChain) {
  Timeline t;
  const TaskId a = t.add("a", Resource::kHost, 1.0);
  const TaskId b = t.add("b", Resource::kKernel, 2.0, {a});
  t.add("c", Resource::kDmaRead, 4.0, {b});
  const auto sched = t.schedule();
  EXPECT_DOUBLE_EQ(sched[0].finish_s, 1.0);
  EXPECT_DOUBLE_EQ(sched[1].start_s, 1.0);
  EXPECT_DOUBLE_EQ(sched[2].start_s, 3.0);
  EXPECT_DOUBLE_EQ(t.makespan(), 7.0);
}

TEST(Timeline, BusyTimePerResource) {
  Timeline t;
  t.add("a", Resource::kKernel, 2.0);
  t.add("b", Resource::kKernel, 3.0);
  t.add("c", Resource::kHost, 1.0);
  EXPECT_DOUBLE_EQ(t.busy_seconds(Resource::kKernel), 5.0);
  EXPECT_DOUBLE_EQ(t.busy_seconds(Resource::kHost), 1.0);
  EXPECT_DOUBLE_EQ(t.busy_seconds(Resource::kDmaRead), 0.0);
}

TEST(Timeline, RejectsForwardDependencies) {
  Timeline t;
  EXPECT_THROW(t.add("a", Resource::kHost, 1.0, {5}), PreconditionError);
  EXPECT_THROW(t.add("b", Resource::kHost, -1.0), PreconditionError);
}

TEST(KernelATimeline, SerialScheduleSumsEverything) {
  // 3 batches, each host 1 + write 2 + kernel 3 + read 10.
  Timeline t = make_kernel_a_timeline(3, 1.0, 2.0, 3.0, 10.0, false);
  EXPECT_DOUBLE_EQ(t.makespan(), 3.0 * 16.0);
}

TEST(KernelATimeline, OverlapHidesInitAndWriteButNotTheRead) {
  // The paper's finding in miniature: with the read dominating, overlap
  // only hides host+write time — the readback stall remains.
  const double host = 1.0;
  const double write = 2.0;
  const double kernel = 3.0;
  const double read = 10.0;
  const Timeline serial =
      make_kernel_a_timeline(20, host, write, kernel, read, false);
  const Timeline overlapped =
      make_kernel_a_timeline(20, host, write, kernel, read, true);
  EXPECT_LT(overlapped.makespan(), serial.makespan());
  // Steady-state batch cost in the overlapped schedule: the ping-pong
  // hazard (kernel b waits for read b-1) makes it kernel + read.
  const double steady = (overlapped.makespan() -
                         (host + write + kernel + read)) /
                        19.0;
  EXPECT_NEAR(steady, kernel + read, 1e-9);
}

TEST(KernelATimeline, ComputeBoundCaseOverlapsTransfersCompletely) {
  // If the kernel dominates, the overlapped pipeline is kernel-bound...
  // except for the ping-pong hazard, which still inserts the read.
  const Timeline overlapped =
      make_kernel_a_timeline(50, 0.1, 0.2, 10.0, 0.5, true);
  const double steady_bound =
      50.0 * (10.0 + 0.5) + 0.3;  // kernel+read per batch plus lead-in
  EXPECT_LE(overlapped.makespan(), steady_bound + 1e-9);
}

}  // namespace
}  // namespace binopt::perf
