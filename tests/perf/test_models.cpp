// Performance-model tests: Table II throughput reproduction at the
// calibrated points and the structural properties of the batch model
// (readback dominates kernel IV.A; kernel IV.B is compute bound).
#include <gtest/gtest.h>

#include "perf/kernel_a_model.h"
#include "perf/kernel_b_model.h"
#include "perf/platform_models.h"
#include "perf/saturation.h"
#include "perf/transfer_model.h"
#include "perf/tree_shape.h"

namespace binopt::perf {
namespace {

constexpr TreeShape kShape{1024};

TEST(TreeShape, PaperNodeCounts) {
  EXPECT_DOUBLE_EQ(kShape.nodes_per_option(), 524800.0);  // "roughly 5e5"
  EXPECT_DOUBLE_EQ(kShape.leaves_per_option(), 1025.0);
  // "approximately 19 MB for N = 1024" at the 38-byte record.
  EXPECT_NEAR(kShape.kernel_a_buffer_bytes(38.0) / (1024.0 * 1024.0), 19.0,
              0.1);
}

TEST(TransferLink, TimesAreLinear) {
  const TransferLink link{2.0e9, 0.5};
  EXPECT_DOUBLE_EQ(link.effective_bandwidth_bps(), 1.0e9);
  EXPECT_DOUBLE_EQ(link.transfer_seconds(1.0e9), 1.0);
  EXPECT_DOUBLE_EQ(link.transfer_seconds(0.0), 0.0);
}

TEST(TransferLink, Validation) {
  const TransferLink bad{0.0, 0.5};
  EXPECT_THROW((void)bad.transfer_seconds(10.0), PreconditionError);
}

// --- Table II throughput reproduction (within 5% of the paper) -------------

TEST(PlatformModels, KernelAFpgaNear25OptionsPerSecond) {
  EXPECT_NEAR(PlatformModels::fpga_kernel_a(kShape).options_per_second(), 25.0,
              25.0 * 0.05);
}

TEST(PlatformModels, KernelAGpuNear53OptionsPerSecond) {
  EXPECT_NEAR(PlatformModels::gpu_kernel_a(kShape).options_per_second(), 53.0,
              53.0 * 0.05);
}

TEST(PlatformModels, KernelBFpgaNear2400OptionsPerSecond) {
  EXPECT_NEAR(PlatformModels::fpga_kernel_b(kShape).options_per_second(),
              2400.0, 2400.0 * 0.05);
}

TEST(PlatformModels, KernelBGpuDoubleNear8900) {
  EXPECT_NEAR(PlatformModels::gpu_kernel_b(kShape, true).options_per_second(),
              8900.0, 8900.0 * 0.05);
}

TEST(PlatformModels, KernelBGpuSingleNear47000) {
  EXPECT_NEAR(PlatformModels::gpu_kernel_b(kShape, false).options_per_second(),
              47000.0, 47000.0 * 0.05);
}

TEST(PlatformModels, CpuReferenceNearPaperRows) {
  EXPECT_NEAR(PlatformModels::cpu_reference_options_per_s(kShape, true), 222.0,
              222.0 * 0.05);
  EXPECT_NEAR(PlatformModels::cpu_reference_options_per_s(kShape, false),
              116.0, 116.0 * 0.05);
}

TEST(PlatformModels, ModifiedKernelAGpuNear840) {
  // Section V-C: "840 options/s vs 58.4 options/s ... 14 times better".
  const double reduced =
      PlatformModels::gpu_kernel_a(kShape, /*reduced_reads=*/true)
          .options_per_second();
  EXPECT_NEAR(reduced, 840.0, 840.0 * 0.10);
  const double full =
      PlatformModels::gpu_kernel_a(kShape).options_per_second();
  EXPECT_NEAR(reduced / full, 14.0, 3.0);  // the paper's 14x
}

TEST(PlatformModels, ModifiedKernelAFpgaSameOrderOfMagnitudeGain) {
  // Paper: "the same order of magnitude of acceleration can be expected".
  const double full = PlatformModels::fpga_kernel_a(kShape).options_per_second();
  const double reduced =
      PlatformModels::fpga_kernel_a(kShape, true).options_per_second();
  EXPECT_GT(reduced / full, 5.0);
  EXPECT_LT(reduced / full, 100.0);
}

// --- Structural properties ---------------------------------------------------

TEST(KernelAModel, ReadbackDominatesBatchTime) {
  const KernelAModel model = PlatformModels::fpga_kernel_a(kShape);
  const BatchBreakdown b = model.batch();
  EXPECT_GT(b.read_s, 0.5 * b.total());  // the Section V-C stall
  EXPECT_GT(b.read_s, 10.0 * b.kernel_s);
}

TEST(KernelAModel, ReducedReadsShrinkOnlyTheReadTerm) {
  const KernelAModel full = PlatformModels::fpga_kernel_a(kShape);
  const KernelAModel reduced = PlatformModels::fpga_kernel_a(kShape, true);
  EXPECT_LT(reduced.batch().read_s, full.batch().read_s / 100.0);
  EXPECT_DOUBLE_EQ(reduced.batch().kernel_s, full.batch().kernel_s);
  EXPECT_DOUBLE_EQ(reduced.batch().write_s, full.batch().write_s);
}

TEST(KernelAModel, PipelineFillAddsNBatches) {
  const KernelAModel model = PlatformModels::fpga_kernel_a(kShape);
  const double t1 = model.time_for_options(1.0);
  const double t2 = model.time_for_options(1001.0);
  EXPECT_NEAR(t2 - t1, 1000.0 * model.batch().total(), 1e-9);
  EXPECT_NEAR(t1, 1025.0 * model.batch().total(), 1e-9);
}

TEST(KernelBModel, ComputeBoundThroughput) {
  const KernelBModel model = PlatformModels::fpga_kernel_b(kShape);
  EXPECT_NEAR(model.nodes_per_second(),
              model.options_per_second() * kShape.nodes_per_option(), 1.0);
  // FPGA kernel B: ~1.3 G nodes/s (8 lanes x 162.62 MHz x occupancy).
  EXPECT_NEAR(model.nodes_per_second(), 1.26e9, 0.05e9);
}

TEST(KernelBModel, TransfersAreNegligible) {
  const KernelBModel model = PlatformModels::fpga_kernel_b(kShape);
  const double compute_only = 2000.0 / model.options_per_second();
  EXPECT_NEAR(model.time_for_options(2000.0), compute_only,
              compute_only * 0.01);
}

TEST(KernelBModel, MeetsThePapersUseCaseTarget) {
  // "more than 2000 options can be computed in less than a second".
  const KernelBModel model = PlatformModels::fpga_kernel_b(kShape);
  EXPECT_LT(model.time_for_options(2000.0), 1.0);
}

// --- Saturation (Section V-C) -----------------------------------------------

TEST(Saturation, NinetyPercentAtTheSaturationPoint) {
  const SaturationCurve curve(1000.0, 1.0e5);
  EXPECT_NEAR(curve.efficiency(1.0e5), 0.9, 1e-12);
  EXPECT_LT(curve.efficiency(1.0e3), 0.9);
  EXPECT_GT(curve.efficiency(1.0e6), 0.98);
}

TEST(Saturation, ThroughputMonotoneInWorkload) {
  const SaturationCurve curve(2400.0, 1.0e5);
  double prev = 0.0;
  for (double n : {1e2, 1e3, 1e4, 1e5, 1e6}) {
    const double rate = curve.options_per_second(n);
    EXPECT_GT(rate, prev);
    EXPECT_LE(rate, 2400.0);
    prev = rate;
  }
}

TEST(Saturation, GpuKernelBSaturatesTenTimesLater) {
  const SaturationCurve fpga = PlatformModels::saturation(2400.0, false);
  const SaturationCurve gpu = PlatformModels::saturation(47000.0, true);
  EXPECT_NEAR(gpu.saturation_point() / fpga.saturation_point(), 10.0, 1e-9);
}

TEST(Saturation, TimeIsWorkloadOverRate) {
  const SaturationCurve curve(100.0, 1e4);
  const double n = 5e3;
  EXPECT_NEAR(curve.time_for_options(n), n / curve.options_per_second(n),
              1e-12);
}

}  // namespace
}  // namespace binopt::perf
