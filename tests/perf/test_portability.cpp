// Tests of the future-work platform projections (paper Section VI:
// KeyStone DSP [16] and Mali [17]) — datasheet sanity plus the relative
// ordering the projection must respect.
#include <gtest/gtest.h>

#include "devices/keystone_c6678.h"
#include "devices/mali_t604.h"
#include "perf/platform_models.h"

namespace binopt::perf {
namespace {

constexpr TreeShape kShape{1024};

TEST(KeystoneDescriptor, DatasheetPeaks) {
  const devices::KeystoneC6678 dsp;
  EXPECT_NEAR(dsp.peak_flops(false), 160.0e9, 1e9);  // 160 GFLOPS SP
  EXPECT_NEAR(dsp.peak_flops(true), 40.0e9, 1e9);    // 40 GFLOPS DP
}

TEST(MaliDescriptor, DatasheetPeaks) {
  const devices::MaliT604 mali;
  EXPECT_NEAR(mali.peak_flops(false), 72.5e9, 1.0e9);
  EXPECT_NEAR(mali.peak_flops(true), mali.peak_flops(false) * 0.25, 1e6);
}

TEST(PortabilityProjection, DspSlowerThanGtxFasterThanNothing) {
  const double dsp =
      PlatformModels::dsp_kernel_b(kShape, true).options_per_second();
  const double gtx =
      PlatformModels::gpu_kernel_b(kShape, true).options_per_second();
  EXPECT_LT(dsp, gtx);
  EXPECT_GT(dsp, 100.0);
}

TEST(PortabilityProjection, MaliIsTheLowPowerLowRatePoint) {
  const double mali_rate =
      PlatformModels::mali_kernel_b(kShape, true).options_per_second();
  EXPECT_LT(mali_rate, 2000.0);  // cannot meet the throughput target
  EXPECT_LT(PlatformModels::mali_power_watts(), 10.0);  // but fits the budget
}

TEST(PortabilityProjection, FpgaStaysMostEnergyEfficientAtDouble) {
  const double fpga_opj =
      PlatformModels::fpga_kernel_b(kShape).options_per_second() /
      PlatformModels::fpga_power_watts_kernel_b();
  const double dsp_opj =
      PlatformModels::dsp_kernel_b(kShape, true).options_per_second() /
      PlatformModels::dsp_power_watts();
  const double mali_opj =
      PlatformModels::mali_kernel_b(kShape, true).options_per_second() /
      PlatformModels::mali_power_watts();
  const double gpu_opj =
      PlatformModels::gpu_kernel_b(kShape, true).options_per_second() /
      PlatformModels::gpu_power_watts();
  EXPECT_GT(fpga_opj, dsp_opj);
  EXPECT_GT(fpga_opj, gpu_opj);
  // Mali's tiny envelope makes it the only platform in the FPGA's class.
  EXPECT_GT(mali_opj, gpu_opj);
}

TEST(PortabilityProjection, SinglePrecisionScalesByTheAluRatio) {
  const double dsp_sp =
      PlatformModels::dsp_kernel_b(kShape, false).options_per_second();
  const double dsp_dp =
      PlatformModels::dsp_kernel_b(kShape, true).options_per_second();
  EXPECT_NEAR(dsp_sp / dsp_dp, 4.0, 1e-6);  // 160/40 GFLOPS
  const double mali_sp =
      PlatformModels::mali_kernel_b(kShape, false).options_per_second();
  const double mali_dp =
      PlatformModels::mali_kernel_b(kShape, true).options_per_second();
  EXPECT_NEAR(mali_sp / mali_dp, 4.0, 1e-6);  // FP64 at 1/4 rate
}

}  // namespace
}  // namespace binopt::perf
