#include "perf/queueing.h"

#include <gtest/gtest.h>

#include <cmath>

namespace binopt::perf {
namespace {

TEST(Md1, LightLoadResponseApproachesServiceTime) {
  const QueueMetrics m = md1_metrics(/*arrivals=*/0.001, /*service=*/1.0);
  EXPECT_TRUE(m.stable);
  EXPECT_NEAR(m.mean_response_s, 1.0, 0.01);
}

TEST(Md1, KnownHalfLoadValue) {
  // rho = 0.5: Wq = 0.5*s / (2*0.5) = s/2.
  const QueueMetrics m = md1_metrics(0.5, 1.0);
  EXPECT_NEAR(m.utilization, 0.5, 1e-12);
  EXPECT_NEAR(m.mean_wait_s, 0.5, 1e-12);
  EXPECT_NEAR(m.mean_response_s, 1.5, 1e-12);
}

TEST(Md1, LittlesLawHolds) {
  const QueueMetrics m = md1_metrics(0.7, 1.0);
  EXPECT_NEAR(m.mean_jobs_in_system, 0.7 * m.mean_response_s, 1e-12);
}

TEST(Md1, OverloadIsUnstable) {
  const QueueMetrics m = md1_metrics(2.0, 1.0);
  EXPECT_FALSE(m.stable);
  EXPECT_TRUE(std::isinf(m.mean_response_s));
}

TEST(Md1, ResponseMonotoneInLoad) {
  double prev = 0.0;
  for (double lambda : {0.1, 0.3, 0.5, 0.7, 0.9, 0.99}) {
    const QueueMetrics m = md1_metrics(lambda, 1.0);
    EXPECT_GT(m.mean_response_s, prev);
    prev = m.mean_response_s;
  }
}

TEST(Md1, MaxArrivalRateInvertsTheResponseBound) {
  const double service = 0.8;
  const double bound = 1.0;
  const double lambda = md1_max_arrival_rate(service, bound);
  ASSERT_GT(lambda, 0.0);
  EXPECT_NEAR(md1_metrics(lambda, service).mean_response_s, bound, 1e-9);
  // Slightly above the rate, the bound is violated.
  EXPECT_GT(md1_metrics(lambda * 1.05, service).mean_response_s, bound);
}

TEST(Md1, ImpossibleBoundGivesZeroCapacity) {
  EXPECT_DOUBLE_EQ(md1_max_arrival_rate(2.0, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(md1_max_arrival_rate(1.0, 1.0), 0.0);
}

TEST(Md1, Validation) {
  EXPECT_THROW((void)md1_metrics(0.0, 1.0), PreconditionError);
  EXPECT_THROW((void)md1_metrics(1.0, 0.0), PreconditionError);
  EXPECT_THROW((void)md1_max_arrival_rate(0.0, 1.0), PreconditionError);
}

}  // namespace
}  // namespace binopt::perf
