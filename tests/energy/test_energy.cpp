// Energy-accounting tests, including the paper's two headline ratios:
// FPGA kernel IV.B is >5x more energy efficient than the reference
// software and ~2x more than the GPU (double precision).
#include "energy/energy_model.h"

#include <gtest/gtest.h>

#include "core/accelerator.h"

namespace binopt::energy {
namespace {

TEST(EnergyMetrics, BasicIdentities) {
  const EnergyMetrics m = EnergyMetrics::from(2400.0, 17.0);
  EXPECT_NEAR(m.options_per_joule, 2400.0 / 17.0, 1e-12);
  EXPECT_NEAR(m.joules_per_option * m.options_per_joule, 1.0, 1e-12);
}

TEST(EnergyMetrics, Validation) {
  EXPECT_THROW((void)EnergyMetrics::from(0.0, 17.0), PreconditionError);
  EXPECT_THROW((void)EnergyMetrics::from(100.0, 0.0), PreconditionError);
}

TEST(EnergyForWorkload, ScalesLinearly) {
  const double one = energy_for_workload(1.0, 2400.0, 17.0);
  const double many = energy_for_workload(2000.0, 2400.0, 17.0);
  EXPECT_NEAR(many, 2000.0 * one, 1e-9);
  // 2000 options at 140 options/J is ~14 J.
  EXPECT_NEAR(many, 2000.0 * 17.0 / 2400.0, 1e-9);
}

TEST(EfficiencyRatio, FpgaKernelBVsReferenceExceedsFive) {
  // Paper Section V-C: "more than 5 times more energy efficient than the
  // software reference".
  using core::PricingAccelerator;
  using core::Target;
  const EnergyMetrics fpga = EnergyMetrics::from(
      PricingAccelerator::modelled_options_per_second(Target::kFpgaKernelB,
                                                      1024),
      PricingAccelerator::modelled_power_watts(Target::kFpgaKernelB));
  const EnergyMetrics reference = EnergyMetrics::from(
      PricingAccelerator::modelled_options_per_second(Target::kCpuReference,
                                                      1024),
      PricingAccelerator::modelled_power_watts(Target::kCpuReference));
  EXPECT_GT(efficiency_ratio(fpga, reference), 5.0);
}

TEST(EfficiencyRatio, FpgaKernelBVsGpuDoubleAboutTwo) {
  // Paper Section V-C: "the DE4 board is 2 times more energy-efficient
  // than the GPU implementation" (double precision).
  using core::PricingAccelerator;
  using core::Target;
  const EnergyMetrics fpga = EnergyMetrics::from(
      PricingAccelerator::modelled_options_per_second(Target::kFpgaKernelB,
                                                      1024),
      PricingAccelerator::modelled_power_watts(Target::kFpgaKernelB));
  const EnergyMetrics gpu = EnergyMetrics::from(
      PricingAccelerator::modelled_options_per_second(Target::kGpuKernelB,
                                                      1024),
      PricingAccelerator::modelled_power_watts(Target::kGpuKernelB));
  EXPECT_NEAR(efficiency_ratio(fpga, gpu), 2.2, 0.4);
}

TEST(EfficiencyRatio, KernelAFpgaStillBeatsItsGpuVersion) {
  // Table II: 1.7 vs 0.4 options/J.
  using core::PricingAccelerator;
  using core::Target;
  const EnergyMetrics fpga = EnergyMetrics::from(
      PricingAccelerator::modelled_options_per_second(Target::kFpgaKernelA,
                                                      1024),
      PricingAccelerator::modelled_power_watts(Target::kFpgaKernelA));
  const EnergyMetrics gpu = EnergyMetrics::from(
      PricingAccelerator::modelled_options_per_second(Target::kGpuKernelA,
                                                      1024),
      PricingAccelerator::modelled_power_watts(Target::kGpuKernelA));
  EXPECT_GT(efficiency_ratio(fpga, gpu), 3.5);
}

}  // namespace
}  // namespace binopt::energy
