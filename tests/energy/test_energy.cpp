// Energy-accounting tests, including the paper's two headline ratios:
// FPGA kernel IV.B is >5x more energy efficient than the reference
// software and ~2x more than the GPU (double precision).
#include "energy/energy_model.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "core/accelerator.h"

namespace binopt::energy {
namespace {

TEST(EnergyMetrics, BasicIdentities) {
  const EnergyMetrics m = EnergyMetrics::from(2400.0, 17.0);
  EXPECT_NEAR(m.options_per_joule, 2400.0 / 17.0, 1e-12);
  EXPECT_NEAR(m.joules_per_option * m.options_per_joule, 1.0, 1e-12);
}

TEST(EnergyMetrics, Validation) {
  EXPECT_THROW((void)EnergyMetrics::from(0.0, 17.0), PreconditionError);
  EXPECT_THROW((void)EnergyMetrics::from(100.0, 0.0), PreconditionError);
}

TEST(EnergyForWorkload, ScalesLinearly) {
  const double one = energy_for_workload(1.0, 2400.0, 17.0);
  const double many = energy_for_workload(2000.0, 2400.0, 17.0);
  EXPECT_NEAR(many, 2000.0 * one, 1e-9);
  // 2000 options at 140 options/J is ~14 J.
  EXPECT_NEAR(many, 2000.0 * 17.0 / 2400.0, 1e-9);
}

TEST(EfficiencyRatio, FpgaKernelBVsReferenceExceedsFive) {
  // Paper Section V-C: "more than 5 times more energy efficient than the
  // software reference".
  using core::PricingAccelerator;
  using core::Target;
  const EnergyMetrics fpga = EnergyMetrics::from(
      PricingAccelerator::modelled_options_per_second(Target::kFpgaKernelB,
                                                      1024),
      PricingAccelerator::modelled_power_watts(Target::kFpgaKernelB));
  const EnergyMetrics reference = EnergyMetrics::from(
      PricingAccelerator::modelled_options_per_second(Target::kCpuReference,
                                                      1024),
      PricingAccelerator::modelled_power_watts(Target::kCpuReference));
  EXPECT_GT(efficiency_ratio(fpga, reference), 5.0);
}

TEST(EfficiencyRatio, FpgaKernelBVsGpuDoubleAboutTwo) {
  // Paper Section V-C: "the DE4 board is 2 times more energy-efficient
  // than the GPU implementation" (double precision).
  using core::PricingAccelerator;
  using core::Target;
  const EnergyMetrics fpga = EnergyMetrics::from(
      PricingAccelerator::modelled_options_per_second(Target::kFpgaKernelB,
                                                      1024),
      PricingAccelerator::modelled_power_watts(Target::kFpgaKernelB));
  const EnergyMetrics gpu = EnergyMetrics::from(
      PricingAccelerator::modelled_options_per_second(Target::kGpuKernelB,
                                                      1024),
      PricingAccelerator::modelled_power_watts(Target::kGpuKernelB));
  EXPECT_NEAR(efficiency_ratio(fpga, gpu), 2.2, 0.4);
}

// ---------------------------------------------------------------------------
// Edge-case hardening: the accounting layer errors or saturates at the
// boundary — a NaN must never escape into a router decision or a report.

TEST(EnergyForWorkload, RejectsDegenerateInputsInsteadOfReturningNaN) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_THROW((void)energy_for_workload(0.0, 2400.0, 17.0),
               PreconditionError);
  EXPECT_THROW((void)energy_for_workload(nan, 2400.0, 17.0),
               PreconditionError);
  EXPECT_THROW((void)energy_for_workload(inf, 2400.0, 17.0),
               PreconditionError);
  // Zero/NaN throughput: the old code divided by it and produced Inf/NaN.
  EXPECT_THROW((void)energy_for_workload(100.0, 0.0, 17.0),
               PreconditionError);
  EXPECT_THROW((void)energy_for_workload(100.0, nan, 17.0),
               PreconditionError);
  EXPECT_THROW((void)energy_for_workload(100.0, 2400.0, -1.0),
               PreconditionError);
}

TEST(EnergyMetrics, RejectsNonFiniteInputs) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_THROW((void)EnergyMetrics::from(nan, 17.0), PreconditionError);
  EXPECT_THROW((void)EnergyMetrics::from(inf, 17.0), PreconditionError);
  EXPECT_THROW((void)EnergyMetrics::from(2400.0, nan), PreconditionError);
  EXPECT_THROW((void)EnergyMetrics::from(-2400.0, 17.0), PreconditionError);
}

TEST(EfficiencyRatio, ErrorsOrSaturatesNeverNaN) {
  const EnergyMetrics good = EnergyMetrics::from(2400.0, 17.0);
  // A zero numerator is a meaningful saturation ("zero times as
  // efficient"), not an error.
  EnergyMetrics zero = good;
  zero.options_per_joule = 0.0;
  EXPECT_EQ(efficiency_ratio(zero, good), 0.0);
  // NaN/Inf on either side, or a non-positive denominator, throw — the
  // 0/0 a pair of unfitted operating points would produce can't leak out.
  EnergyMetrics poisoned = good;
  poisoned.options_per_joule = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW((void)efficiency_ratio(poisoned, good), PreconditionError);
  EXPECT_THROW((void)efficiency_ratio(good, poisoned), PreconditionError);
  poisoned.options_per_joule = std::numeric_limits<double>::infinity();
  EXPECT_THROW((void)efficiency_ratio(poisoned, good), PreconditionError);
  EXPECT_THROW((void)efficiency_ratio(good, zero), PreconditionError);
}

TEST(SafeJoulesPerOption, SaturatesToInfinityNeverNaN) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_NEAR(safe_joules_per_option(2400.0, 17.0), 17.0 / 2400.0, 1e-15);
  // Every degenerate operating point ranks strictly worse than every
  // modelled one — +inf, so the router's comparisons stay total orders.
  for (const double bad : {0.0, -5.0, nan, inf}) {
    EXPECT_EQ(safe_joules_per_option(bad, 17.0), inf);
    EXPECT_EQ(safe_joules_per_option(2400.0, bad), inf);
    EXPECT_FALSE(std::isnan(safe_joules_per_option(bad, bad)));
  }
}

TEST(EfficiencyRatio, KernelAFpgaStillBeatsItsGpuVersion) {
  // Table II: 1.7 vs 0.4 options/J.
  using core::PricingAccelerator;
  using core::Target;
  const EnergyMetrics fpga = EnergyMetrics::from(
      PricingAccelerator::modelled_options_per_second(Target::kFpgaKernelA,
                                                      1024),
      PricingAccelerator::modelled_power_watts(Target::kFpgaKernelA));
  const EnergyMetrics gpu = EnergyMetrics::from(
      PricingAccelerator::modelled_options_per_second(Target::kGpuKernelA,
                                                      1024),
      PricingAccelerator::modelled_power_watts(Target::kGpuKernelA));
  EXPECT_GT(efficiency_ratio(fpga, gpu), 3.5);
}

}  // namespace
}  // namespace binopt::energy
